package xrand

import (
	"math"
	"math/rand"
	"testing"
)

// TestStreamMatchesStdlib pins the wrapper transparency guarantee: the
// counting source must not alter the values math/rand would produce, or
// every seeded experiment in the repository silently changes.
func TestStreamMatchesStdlib(t *testing.T) {
	r := New(42)
	std := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			if got, want := r.Int63(), std.Int63(); got != want {
				t.Fatalf("draw %d: Int63 %d != stdlib %d", i, got, want)
			}
		case 1:
			if got, want := r.Float64(), std.Float64(); got != want {
				t.Fatalf("draw %d: Float64 %v != stdlib %v", i, got, want)
			}
		case 2:
			if got, want := r.Intn(97), std.Intn(97); got != want {
				t.Fatalf("draw %d: Intn %d != stdlib %d", i, got, want)
			}
		case 3:
			if got, want := r.NormFloat64(), std.NormFloat64(); got != want {
				t.Fatalf("draw %d: NormFloat64 %v != stdlib %v", i, got, want)
			}
		}
	}
}

func TestStateRestore(t *testing.T) {
	// Burn a heterogeneous prefix (every sampler draws through the counted
	// source), checkpoint, and continue on both the original and a restored
	// copy: the suffixes must agree bit-for-bit.
	r := New(99)
	for i := 0; i < 50; i++ {
		r.Intn(1000)
		r.Float64()
		r.Binomial(100, 0.05)
		r.SampleDistinct(30, 4)
		r.NormFloat64()
	}
	seed, draws := r.State()
	if seed != 99 || draws == 0 {
		t.Fatalf("State() = (%d, %d), want seed 99 and draws > 0", seed, draws)
	}
	fresh := NewFromState(seed, draws)
	for i := 0; i < 200; i++ {
		if a, b := r.Int63(), fresh.Int63(); a != b {
			t.Fatalf("draw %d after restore diverged: %d != %d", i, a, b)
		}
	}
	// Restore rewinds an existing Rand too.
	r.Restore(99, 0)
	ref := New(99)
	for i := 0; i < 50; i++ {
		if a, b := r.Int63(), ref.Int63(); a != b {
			t.Fatalf("rewound draw %d diverged: %d != %d", i, a, b)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitIndependentButDeterministic(t *testing.T) {
	a1 := New(7).Split()
	a2 := New(7).Split()
	if a1.Int63() != a2.Int63() {
		t.Fatal("split streams not reproducible")
	}
	// Parent and child streams differ.
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 20; i++ {
		if parent.Int63() == child.Int63() {
			same++
		}
	}
	if same == 20 {
		t.Fatal("split stream identical to parent")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 10; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(2)
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	mean := float64(hits) / trials
	if math.Abs(mean-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) mean = %v", mean)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(3)
	cases := []struct {
		n int
		p float64
	}{
		{100, 0.01},    // inversion path
		{4950, 0.0002}, // inversion path, tiny p (EA mutation regime)
		{10000, 0.3},   // normal-approximation path
	}
	for _, tc := range cases {
		const trials = 4000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			v := float64(r.Binomial(tc.n, tc.p))
			if v < 0 || v > float64(tc.n) {
				t.Fatalf("Binomial(%d, %v) = %v out of range", tc.n, tc.p, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / trials
		wantMean := float64(tc.n) * tc.p
		variance := sumSq/trials - mean*mean
		wantVar := wantMean * (1 - tc.p)
		// 5 standard errors of tolerance.
		seMean := math.Sqrt(wantVar / trials)
		if math.Abs(mean-wantMean) > 5*seMean+1e-9 {
			t.Errorf("Binomial(%d, %v): mean %v, want %v", tc.n, tc.p, mean, wantMean)
		}
		if wantVar > 0.01 && math.Abs(variance-wantVar) > 0.3*wantVar {
			t.Errorf("Binomial(%d, %v): var %v, want %v", tc.n, tc.p, variance, wantVar)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(4)
	if r.Binomial(0, 0.5) != 0 || r.Binomial(10, 0) != 0 {
		t.Fatal("degenerate binomial not 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(10, 1) != 10")
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(5)
	for _, tc := range []struct{ n, count int }{
		{10, 0}, {10, 1}, {10, 5}, {10, 10}, {1000, 3}, {1000, 900},
	} {
		got := r.SampleDistinct(tc.n, tc.count)
		if len(got) != tc.count {
			t.Fatalf("SampleDistinct(%d, %d) returned %d items", tc.n, tc.count, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= tc.n {
				t.Fatalf("value %d out of range [0, %d)", v, tc.n)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctUniform(t *testing.T) {
	// Each element should appear with roughly equal frequency.
	r := New(6)
	counts := make([]int, 10)
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleDistinct(10, 3) {
			counts[v]++
		}
	}
	want := float64(trials) * 3 / 10
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.07*want {
			t.Errorf("element %d drawn %d times, want ≈ %.0f", v, c, want)
		}
	}
}

func TestSampleDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).SampleDistinct(3, 4)
}

func TestExp(t *testing.T) {
	r := New(7)
	const trials = 20000
	sum := 0.0
	for i := 0; i < trials; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %v, want 0.5", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermAndShuffle(t *testing.T) {
	r := New(8)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if seen[v] {
			t.Fatal("perm repeated a value")
		}
		seen[v] = true
	}
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 28 {
		t.Fatal("shuffle lost elements")
	}
}
