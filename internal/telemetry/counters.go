package telemetry

import "sync/atomic"

// Counters is a set of monotonically increasing work counters. All fields
// are atomics so independent shards and goroutines may add concurrently;
// because every instrumented site adds the full logical amount of work for
// a (deterministic) unit — one scan, one evaluation, one Dijkstra run —
// totals are independent of worker count and interleaving.
type Counters struct {
	// DijkstraRuns counts single-source shortest-path computations.
	DijkstraRuns atomic.Int64
	// EdgeRelaxations counts successful distance updates inside Dijkstra
	// (accumulated locally per run, flushed once at the end).
	EdgeRelaxations atomic.Int64
	// CandidateEvals counts candidate-shortcut gain evaluations: a full
	// GainsAdd scan adds the candidate-universe size, a single GainAdd
	// adds one.
	CandidateEvals atomic.Int64
	// SigmaEvals counts σ oracle evaluations (Sigma/SigmaPar calls).
	SigmaEvals atomic.Int64
	// MuEvals counts μ lower-bound evaluations.
	MuEvals atomic.Int64
	// NuEvals counts ν upper-bound evaluations.
	NuEvals atomic.Int64
	// OverlayBuilds counts shortcut-overlay oracle constructions.
	OverlayBuilds atomic.Int64
	// OverlayQueries counts point distance queries against an overlay.
	OverlayQueries atomic.Int64
	// OverlayRows counts full distance-row queries against an overlay.
	OverlayRows atomic.Int64
	// RowCacheHits counts lazy-table row requests served from cache.
	RowCacheHits atomic.Int64
	// RowCacheMisses counts lazy-table row requests that created a new
	// cache entry.
	RowCacheMisses atomic.Int64
	// RowCacheComputes counts Dijkstra runs performed by lazy tables.
	// Unlike the solver counters above, the row-cache counters depend on
	// the distance backend (dense tables never touch them) and — under a
	// row cap — on goroutine interleaving, so the backend-equivalence
	// guarantees exclude them.
	RowCacheComputes atomic.Int64
	// RowCacheEvictions counts rows dropped to respect a lazy table's cap.
	RowCacheEvictions atomic.Int64

	// RowsMerged counts endpoint distance rows updated in place by the
	// incremental O(n) shortcut merge (core search Add); RowsUnchanged
	// counts rows the merge proved untouched. Both stay 0 on the rebuild
	// evaluation path. Like the solver counters, their totals are
	// worker-count invariant: whether a row changed depends only on the
	// (deterministic) distance values, never on shard boundaries.
	RowsMerged    atomic.Int64
	RowsUnchanged atomic.Int64
	// PairsRescanned counts pairs whose per-candidate gains contribution
	// was (re)computed by a gains scan — every unsatisfied pair on a cold
	// scan, only the changed-row and newly-satisfied pairs on a delta
	// rescan. PairsSkipped counts unsatisfied pairs a delta rescan proved
	// it could keep verbatim (no endpoint row changed).
	PairsRescanned atomic.Int64
	PairsSkipped   atomic.Int64
	// CandidatesPruned counts candidate cells a pruned gains scan proved
	// zero-gain without touching them: per scanned pair, the candidate
	// universe minus the cells both of whose endpoints lie within d_t of
	// a pair endpoint. Accumulated while the per-pair candidate lists are
	// built — a serial step — so the total is identical at every worker
	// count. Only sparse-backend (or very large) instances run pruned
	// scans, so the total differs across distance backends.
	CandidatesPruned atomic.Int64

	// FailureScenariosEvaled counts single-failure scenario σ evaluations
	// performed by the survivable objective (core σ⁻): one per scenario
	// folded into a worst-case recompute. Stays 0 under SurviveNone. Like
	// the solver counters, the total depends only on the failure model and
	// the selection trajectory, never on shard boundaries.
	FailureScenariosEvaled atomic.Int64
}

// global is the process-wide counter set every instrumented package feeds.
var global Counters

// Global returns the process-wide counters. The solver stack adds to them
// unconditionally (the per-evaluation atomic add is noise next to the work
// it counts); consumers snapshot before and after a region of interest and
// diff.
func Global() *Counters { return &global }

// CounterSnapshot is a plain-integer copy of a Counters state with a
// stable JSON schema: every field is always present, so run records can be
// diffed and aggregated by machines.
type CounterSnapshot struct {
	DijkstraRuns    int64 `json:"dijkstra_runs"`
	EdgeRelaxations int64 `json:"edge_relaxations"`
	CandidateEvals  int64 `json:"candidate_evals"`
	SigmaEvals      int64 `json:"sigma_evals"`
	MuEvals         int64 `json:"mu_evals"`
	NuEvals         int64 `json:"nu_evals"`
	OverlayBuilds   int64 `json:"overlay_builds"`
	OverlayQueries  int64 `json:"overlay_queries"`
	OverlayRows     int64 `json:"overlay_rows"`

	RowCacheHits      int64 `json:"row_cache_hits"`
	RowCacheMisses    int64 `json:"row_cache_misses"`
	RowCacheComputes  int64 `json:"row_cache_computes"`
	RowCacheEvictions int64 `json:"row_cache_evictions"`

	RowsMerged       int64 `json:"rows_merged"`
	RowsUnchanged    int64 `json:"rows_unchanged"`
	PairsRescanned   int64 `json:"pairs_rescanned"`
	PairsSkipped     int64 `json:"pairs_skipped"`
	CandidatesPruned int64 `json:"candidates_pruned"`

	FailureScenariosEvaled int64 `json:"failure_scenarios_evaled"`
}

// Snapshot reads all counters. Each field is read atomically; the snapshot
// as a whole is consistent when taken at a quiescent point (between runs),
// which is how the cmds and tests use it.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		DijkstraRuns:    c.DijkstraRuns.Load(),
		EdgeRelaxations: c.EdgeRelaxations.Load(),
		CandidateEvals:  c.CandidateEvals.Load(),
		SigmaEvals:      c.SigmaEvals.Load(),
		MuEvals:         c.MuEvals.Load(),
		NuEvals:         c.NuEvals.Load(),
		OverlayBuilds:   c.OverlayBuilds.Load(),
		OverlayQueries:  c.OverlayQueries.Load(),
		OverlayRows:     c.OverlayRows.Load(),

		RowCacheHits:      c.RowCacheHits.Load(),
		RowCacheMisses:    c.RowCacheMisses.Load(),
		RowCacheComputes:  c.RowCacheComputes.Load(),
		RowCacheEvictions: c.RowCacheEvictions.Load(),

		RowsMerged:       c.RowsMerged.Load(),
		RowsUnchanged:    c.RowsUnchanged.Load(),
		PairsRescanned:   c.PairsRescanned.Load(),
		PairsSkipped:     c.PairsSkipped.Load(),
		CandidatesPruned: c.CandidatesPruned.Load(),

		FailureScenariosEvaled: c.FailureScenariosEvaled.Load(),
	}
}

// Reset zeroes all counters. Intended for tests and for CLI runs that want
// per-run totals without diffing.
func (c *Counters) Reset() {
	c.DijkstraRuns.Store(0)
	c.EdgeRelaxations.Store(0)
	c.CandidateEvals.Store(0)
	c.SigmaEvals.Store(0)
	c.MuEvals.Store(0)
	c.NuEvals.Store(0)
	c.OverlayBuilds.Store(0)
	c.OverlayQueries.Store(0)
	c.OverlayRows.Store(0)
	c.RowCacheHits.Store(0)
	c.RowCacheMisses.Store(0)
	c.RowCacheComputes.Store(0)
	c.RowCacheEvictions.Store(0)
	c.RowsMerged.Store(0)
	c.RowsUnchanged.Store(0)
	c.PairsRescanned.Store(0)
	c.PairsSkipped.Store(0)
	c.CandidatesPruned.Store(0)
	c.FailureScenariosEvaled.Store(0)
}

// BackendInvariant returns a copy of the snapshot with every counter that
// depends on the distance backend zeroed: Dijkstra runs and edge
// relaxations (eager for a dense table, on-demand for a lazy one), the
// row-cache activity (dense tables never touch it; under a row cap it
// also depends on goroutine interleaving), the merge row classification
// (RowsMerged/RowsUnchanged look at stored distances beyond d_t, which a
// bounded backend deliberately reports as +Inf where dense/lazy hold
// finite values), and CandidatesPruned (only pruned scans bump it, and
// only sparse backends run them). What remains is exactly the solver work
// that must be identical across backends — the invariant the
// backend-differential suite asserts.
func (s CounterSnapshot) BackendInvariant() CounterSnapshot {
	s.DijkstraRuns = 0
	s.EdgeRelaxations = 0
	s.RowCacheHits = 0
	s.RowCacheMisses = 0
	s.RowCacheComputes = 0
	s.RowCacheEvictions = 0
	s.RowsMerged = 0
	s.RowsUnchanged = 0
	s.CandidatesPruned = 0
	return s
}

// Sub returns the field-wise difference s − prev: the work performed
// between two snapshots.
func (s CounterSnapshot) Sub(prev CounterSnapshot) CounterSnapshot {
	return CounterSnapshot{
		DijkstraRuns:    s.DijkstraRuns - prev.DijkstraRuns,
		EdgeRelaxations: s.EdgeRelaxations - prev.EdgeRelaxations,
		CandidateEvals:  s.CandidateEvals - prev.CandidateEvals,
		SigmaEvals:      s.SigmaEvals - prev.SigmaEvals,
		MuEvals:         s.MuEvals - prev.MuEvals,
		NuEvals:         s.NuEvals - prev.NuEvals,
		OverlayBuilds:   s.OverlayBuilds - prev.OverlayBuilds,
		OverlayQueries:  s.OverlayQueries - prev.OverlayQueries,
		OverlayRows:     s.OverlayRows - prev.OverlayRows,

		RowCacheHits:      s.RowCacheHits - prev.RowCacheHits,
		RowCacheMisses:    s.RowCacheMisses - prev.RowCacheMisses,
		RowCacheComputes:  s.RowCacheComputes - prev.RowCacheComputes,
		RowCacheEvictions: s.RowCacheEvictions - prev.RowCacheEvictions,

		RowsMerged:       s.RowsMerged - prev.RowsMerged,
		RowsUnchanged:    s.RowsUnchanged - prev.RowsUnchanged,
		PairsRescanned:   s.PairsRescanned - prev.PairsRescanned,
		PairsSkipped:     s.PairsSkipped - prev.PairsSkipped,
		CandidatesPruned: s.CandidatesPruned - prev.CandidatesPruned,

		FailureScenariosEvaled: s.FailureScenariosEvaled - prev.FailureScenariosEvaled,
	}
}
