package telemetry

import (
	"os"
	"path/filepath"
	"sync"
)

// AtomicWriteFile writes data to path crash-safely: into a temp file in
// the same directory, fsynced, then atomically renamed over path. A crash
// at any instant leaves either the previous complete file or the new
// complete file — never a torn prefix — which is what checkpoint resume
// and trajectory baselines require. The directory entry is fsynced after
// the rename on a best-effort basis (some filesystems don't support it).
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = ""
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// AtomicJSONLSink is a crash-safe JSONLSink for low-frequency streams
// whose consumers need every line complete — checkpoint files above all:
// a resume that reads a torn final checkpoint line fails validation and
// scraps the run it was meant to save. Each Emit rewrites the whole
// stream via AtomicWriteFile, so the on-disk file is always a complete,
// schema-valid prefix of the emitted events.
//
// The whole stream lives in memory and every Emit costs a full rewrite, so
// this sink is for checkpoint cadences (tens of events), not per-round
// tracing — keep the plain JSONLSink for hot streams.
type AtomicJSONLSink struct {
	mu   sync.Mutex
	path string
	buf  []byte
	err  error
}

// NewAtomicJSONL returns a crash-safe sink rewriting path on every event.
// The file is not created until the first Emit; an existing file is
// replaced wholesale on the first Emit (matching the truncate semantics
// of opening a fresh plain sink).
func NewAtomicJSONL(path string) *AtomicJSONLSink {
	return &AtomicJSONLSink{path: path}
}

// Emit appends the event and atomically rewrites the file. Errors are
// sticky and reported by Err; Emit itself never fails, matching
// JSONLSink.
func (s *AtomicJSONLSink) Emit(e Event) {
	line, err := EncodeEvent(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err != nil {
		s.err = err
		return
	}
	s.buf = append(s.buf, line...)
	s.buf = append(s.buf, '\n')
	if err := AtomicWriteFile(s.path, s.buf, 0o644); err != nil {
		s.err = err
	}
}

// Err returns the first encoding or write error the sink hit, or nil.
func (s *AtomicJSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
