// Package telemetry is the solver's observability layer: cheap always-on
// counters, typed per-round trace events, and machine-readable run records.
//
// It is deliberately stdlib-only and dependency-free so every layer of the
// solver stack (shortestpath, core, dynamic, experiments, the cmds) can
// import it without cycles.
//
// # Counters
//
// Counters tally the units of solver work — Dijkstra runs, edge
// relaxations, candidate evaluations, σ/μ/ν oracle calls, overlay queries.
// They are accumulated per logical unit of work (one atomic add per scan or
// evaluation, with per-shard local tallies flushed once), never per inner
// loop iteration, so they cost a handful of nanoseconds per evaluation and
// nothing at all on the candidate-scan hot loops. Because each counter
// counts logical work — which the parallel engine's determinism contract
// keeps identical across worker counts — totals are deterministic at any
// parallelism: a run at -par 1 and -par 8 reports the same numbers.
//
// # Events and sinks
//
// A Sink receives typed events: per-round trace events from the placement
// algorithms (RoundEvent, SandwichEvent, DynamicStepEvent) and end-of-run
// records (RunRecord). Solvers hold a nil Sink by default and guard every
// emission with a nil check, so detached telemetry costs zero allocations
// and zero time on the hot path — the allocation tests in internal/core
// lock that in.
//
// JSONLSink writes one JSON object per line with a stable schema: every
// line carries an "event" discriminator field, and numeric fields are
// always present (no omitempty on required fields) so downstream tooling
// (CI validation, BENCH_*.json aggregation) can rely on them.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink receives telemetry events. Implementations must be safe for
// concurrent Emit calls: solvers may emit from the goroutine driving the
// run while auxiliary emitters (e.g. the dynamic problem) fire from the
// same call stack, and a single sink may be shared across sequential runs.
//
// A nil Sink means telemetry is off; every emitter nil-checks before
// building an event, so disabled telemetry allocates nothing.
type Sink interface {
	Emit(e Event)
}

// JSONLSink writes events as JSON Lines: one object per event, an "event"
// kind discriminator injected as the first field. It serializes concurrent
// Emit calls with a mutex.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONL returns a sink writing JSON Lines to w.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w}
}

// Emit encodes the event as one JSON line. Encoding or write errors are
// sticky and reported by Err; Emit itself never fails so solver code stays
// branch-free.
func (s *JSONLSink) Emit(e Event) {
	line, err := EncodeEvent(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err != nil {
		s.err = err
		return
	}
	line = append(line, '\n')
	if _, err := s.w.Write(line); err != nil {
		s.err = err
	}
}

// Err returns the first encoding or write error the sink hit, or nil.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// EncodeEvent marshals an event to its canonical one-line JSON form: the
// struct's fields prefixed with an "event" discriminator holding
// e.EventKind(). This is the schema every JSONL consumer parses.
func EncodeEvent(e Event) ([]byte, error) {
	body, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	kind, err := json.Marshal(e.EventKind())
	if err != nil {
		return nil, err
	}
	if len(body) < 2 || body[0] != '{' {
		return nil, fmt.Errorf("telemetry: event %q did not marshal to a JSON object", e.EventKind())
	}
	out := make([]byte, 0, len(body)+len(kind)+len(`{"event":,`))
	out = append(out, `{"event":`...)
	out = append(out, kind...)
	if len(body) > 2 { // non-empty object: splice the fields after the kind
		out = append(out, ',')
		out = append(out, body[1:]...)
	} else {
		out = append(out, '}')
	}
	return out, nil
}
