package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// requiredKeys maps each event kind to the field names its JSONL encoding
// always carries. It is derived from the zero-value encoding of each event
// type, so the validator can never drift from the schema: a field added to
// an event struct (without omitempty) becomes required automatically.
var requiredKeys = func() map[string][]string {
	req := make(map[string][]string)
	for _, e := range []Event{RoundEvent{}, SandwichEvent{}, DynamicStepEvent{}, CheckpointEvent{}, RunRecord{}} {
		line, err := EncodeEvent(e)
		if err != nil {
			panic(fmt.Sprintf("telemetry: zero-value %q does not encode: %v", e.EventKind(), err))
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(line, &m); err != nil {
			panic(fmt.Sprintf("telemetry: zero-value %q encoding unparseable: %v", e.EventKind(), err))
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			if k == "event" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		req[e.EventKind()] = keys
	}
	return req
}()

// validateLine schema-checks a single JSONL line and returns its event
// kind: the line must parse as a JSON object, carry an "event"
// discriminator naming a known kind, and contain every field that kind's
// schema requires. Both ValidateJSONL and ReadRunRecords route through
// here, so the two can never disagree on what a valid stream is.
func validateLine(line []byte) (kind string, err error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(line, &m); err != nil {
		return "", fmt.Errorf("not a JSON object: %v", err)
	}
	raw, ok := m["event"]
	if !ok {
		return "", fmt.Errorf("missing \"event\" discriminator")
	}
	if err := json.Unmarshal(raw, &kind); err != nil {
		return "", fmt.Errorf("\"event\" is not a string: %v", err)
	}
	req, ok := requiredKeys[kind]
	if !ok {
		return kind, fmt.Errorf("unknown event kind %q", kind)
	}
	for _, k := range req {
		if _, ok := m[k]; !ok {
			return kind, fmt.Errorf("%s event missing required field %q", kind, k)
		}
	}
	if kind == (RunRecord{}).EventKind() {
		if err := validateCounters(m["counters"]); err != nil {
			return kind, err
		}
	}
	return kind, nil
}

// ValidateJSONL checks a JSON-Lines telemetry stream against the event
// schema: every non-empty line must parse as a JSON object, carry an
// "event" discriminator naming a known kind, and contain every field that
// kind's schema requires. It returns the per-kind line counts; the first
// violation aborts with an error naming the offending line number.
//
// CI runs this over the -jsonl output of mscbench (via `mscbench
// -validate`) so BENCH aggregation can rely on the schema.
func ValidateJSONL(r io.Reader) (counts map[string]int, err error) {
	counts = make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		kind, err := validateLine(line)
		if err != nil {
			return counts, fmt.Errorf("line %d: %v", lineNo, err)
		}
		counts[kind]++
	}
	if err := sc.Err(); err != nil {
		return counts, err
	}
	return counts, nil
}

// ReadRunRecords decodes every "run" record of a JSONL telemetry stream.
// Each line — run record or not — is schema-validated exactly like
// ValidateJSONL, so a stream that ReadRunRecords accepts is a stream
// `mscbench -validate` accepts; the sweep aggregator relies on this to
// never ingest a record CI would reject. Streams with no run record
// return an empty slice and no error: the caller decides whether that is
// a failure (the sweep orchestrator treats it as a broken child).
func ReadRunRecords(r io.Reader) ([]RunRecord, error) {
	var recs []RunRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	runKind := (RunRecord{}).EventKind()
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		kind, err := validateLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if kind != runKind {
			continue
		}
		var rec RunRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("line %d: malformed run record: %v", lineNo, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// LastCheckpoint scans a JSONL telemetry stream and returns the last
// "checkpoint" event it contains — the snapshot `mscplace -resume` picks
// up. It returns an error when the stream holds no checkpoint or a
// checkpoint line does not decode.
func LastCheckpoint(r io.Reader) (*CheckpointEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var last *CheckpointEvent
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("line %d: not a JSON object: %v", lineNo, err)
		}
		if probe.Event != (CheckpointEvent{}).EventKind() {
			continue
		}
		var cp CheckpointEvent
		if err := json.Unmarshal(line, &cp); err != nil {
			return nil, fmt.Errorf("line %d: malformed checkpoint: %v", lineNo, err)
		}
		last = &cp
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if last == nil {
		return nil, fmt.Errorf("telemetry: stream holds no checkpoint event")
	}
	return last, nil
}

// counterKeys are the required fields of a CounterSnapshot object, derived
// the same way as requiredKeys.
var counterKeys = func() []string {
	body, err := json.Marshal(CounterSnapshot{})
	if err != nil {
		panic(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		panic(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}()

func validateCounters(raw json.RawMessage) error {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("run record \"counters\" is not an object: %v", err)
	}
	for _, k := range counterKeys {
		if _, ok := m[k]; !ok {
			return fmt.Errorf("run record counters missing field %q", k)
		}
	}
	return nil
}
