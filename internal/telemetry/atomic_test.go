package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicWriteFileReplacesWholeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicWriteFile(path, []byte("first version, quite long"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q, want full replacement (no stale tail)", got)
	}
	// No temp litter after successful renames.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "out.json" {
		t.Fatalf("directory not clean after atomic writes: %v", ents)
	}
}

func TestAtomicWriteFileFailureLeavesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "missing-parent", "out.json")
	if err := AtomicWriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("want error for unwritable directory")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed write materialized a file: %v", err)
	}
}

// TestAtomicJSONLSinkNeverTornMidStream is the torn-write regression for
// checkpoint files: after every single Emit, the file on disk must be a
// complete, schema-valid JSONL stream whose last checkpoint is readable —
// the invariant a crash at any instant relies on. The plain append sink
// cannot give this (a kill between Write syscalls tears the final line);
// the atomic sink must.
func TestAtomicJSONLSinkNeverTornMidStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	sink := NewAtomicJSONL(path)
	for round := 1; round <= 5; round++ {
		sink.Emit(CheckpointEvent{
			Algorithm: "ea",
			Round:     round,
			Seed:      7,
			Draws:     uint64(round * 13),
			Best:      CheckpointSolution{Selection: []int{1, 2}, Sigma: round},
		})
		if err := sink.Err(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.HasSuffix(data, []byte("\n")) {
			t.Fatalf("round %d: stream does not end at a line boundary", round)
		}
		counts, err := ValidateJSONL(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("round %d: on-disk stream invalid: %v", round, err)
		}
		if counts["checkpoint"] != round {
			t.Fatalf("round %d: %d checkpoint lines on disk", round, counts["checkpoint"])
		}
		cp, err := LastCheckpoint(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("round %d: LastCheckpoint: %v", round, err)
		}
		if cp.Round != round || cp.Draws != uint64(round*13) {
			t.Fatalf("round %d: resumed wrong snapshot: %+v", round, cp)
		}
	}
}

func TestAtomicJSONLSinkStickyError(t *testing.T) {
	// A path whose parent can never exist makes every write fail; the
	// first failure must stick and later emits stay no-ops.
	sink := NewAtomicJSONL(filepath.Join(t.TempDir(), "no-such-dir", "x.jsonl"))
	sink.Emit(CheckpointEvent{Algorithm: "ea", Round: 1})
	first := sink.Err()
	if first == nil {
		t.Fatal("want sticky error for unwritable path")
	}
	sink.Emit(CheckpointEvent{Algorithm: "ea", Round: 2})
	if got := sink.Err(); got != first {
		t.Fatalf("error not sticky: %v then %v", first, got)
	}
	if !strings.Contains(first.Error(), "no-such-dir") {
		t.Fatalf("error does not name the path: %v", first)
	}
}
