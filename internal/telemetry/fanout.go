package telemetry

import (
	"io"
	"sync"
	"sync/atomic"
)

// FanoutSink multiplexes one telemetry stream to many consumers: attached
// Sinks (a JSONL file, a flight-recorder ring) receive every event
// synchronously, and channel Subscriptions (the ops server's /events
// stream) receive events best-effort — a subscriber that cannot keep up
// loses events rather than stalling the solver.
//
// Emit is safe for concurrent use and holds only a read lock, so
// subscribers may attach and detach while a solve is running. The zero
// value is ready to use; a *FanoutSink with no consumers is a valid (if
// pointless) Sink.
type FanoutSink struct {
	mu    sync.RWMutex
	sinks []Sink
	subs  map[*Subscription]struct{}
	// droppedTotal accumulates drops folded in from closed subscriptions;
	// Dropped adds the live subscriptions on top, so the total never goes
	// backwards when a slow client disconnects.
	droppedTotal atomic.Int64
}

// NewFanout returns an empty fanout sink.
func NewFanout() *FanoutSink { return &FanoutSink{} }

// Attach adds a synchronous consumer: every subsequent Emit calls s.Emit
// inline, in attachment order. Attached sinks must tolerate concurrent
// Emit calls, exactly like any other Sink.
func (f *FanoutSink) Attach(s Sink) {
	if s == nil {
		return
	}
	f.mu.Lock()
	f.sinks = append(f.sinks, s)
	f.mu.Unlock()
}

// Emit implements Sink: forward to every attached sink, then offer the
// event to every subscription without blocking. A subscription whose
// buffer is full counts the event as dropped instead of delaying the
// emitter — solver progress never depends on how fast an HTTP client
// reads.
func (f *FanoutSink) Emit(e Event) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, s := range f.sinks {
		s.Emit(e)
	}
	for sub := range f.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
		}
	}
}

// Subscribe registers a buffered live-event consumer and returns its
// Subscription. buf <= 0 selects a default buffer of 64 events. The caller
// must eventually call Close, or the subscription leaks.
func (f *FanoutSink) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	sub := &Subscription{f: f, ch: make(chan Event, buf)}
	f.mu.Lock()
	if f.subs == nil {
		f.subs = make(map[*Subscription]struct{})
	}
	f.subs[sub] = struct{}{}
	f.mu.Unlock()
	return sub
}

// Subscribers reports the number of live subscriptions.
func (f *FanoutSink) Subscribers() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.subs)
}

// Dropped reports the total number of events dropped across all
// subscriptions, past and present.
func (f *FanoutSink) Dropped() int64 {
	total := f.droppedTotal.Load()
	f.mu.RLock()
	for sub := range f.subs {
		total += sub.dropped.Load()
	}
	f.mu.RUnlock()
	return total
}

// Subscription is one live consumer of a FanoutSink. Events arrive on
// Events() in emission order; events offered while the buffer was full are
// counted by Dropped rather than delivered late.
type Subscription struct {
	f       *FanoutSink
	ch      chan Event
	dropped atomic.Int64
	once    sync.Once
}

// Events returns the receive channel. It is closed by Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many events this subscription lost to a full buffer.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channel. Safe to call
// more than once. After Close returns, no further sends can occur (removal
// happens under the fanout's write lock, which excludes in-flight Emits).
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.f.mu.Lock()
		delete(s.f.subs, s)
		s.f.droppedTotal.Add(s.dropped.Load())
		s.f.mu.Unlock()
		close(s.ch)
	})
}

// RingSink is the flight recorder's buffer: a fixed-capacity ring holding
// the most recent events, safe for concurrent Emit. Recording one event is
// a mutex-guarded pointer store — no encoding, no allocation beyond the
// interface value — so the ring can stay attached to a hot solve.
//
// The recorded events are dumped as schema-valid JSONL (the same encoding
// JSONLSink writes, accepted by ValidateJSONL) by WriteJSONL: on SIGQUIT,
// on shard panic, or on demand via the ops server's /debug/flightrecorder.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total int64
}

// NewRing returns a ring buffer holding the last n events (n < 1 is
// clamped to 1).
func NewRing(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]Event, n)}
}

// Emit implements Sink.
func (r *RingSink) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Cap returns the ring's capacity in events.
func (r *RingSink) Cap() int { return len(r.buf) }

// Total returns how many events were ever recorded (including those the
// ring has since overwritten).
func (r *RingSink) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the buffered events, oldest first.
func (r *RingSink) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *RingSink) snapshotLocked() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// WriteJSONL dumps the buffered events, oldest first, in the canonical
// JSONL encoding. It snapshots the ring under the lock and encodes outside
// it, so a dump never stalls concurrent recording. It returns the number
// of events written and the first encoding or write error.
func (r *RingSink) WriteJSONL(w io.Writer) (n int, err error) {
	r.mu.Lock()
	events := r.snapshotLocked()
	r.mu.Unlock()
	for _, e := range events {
		line, err := EncodeEvent(e)
		if err != nil {
			return n, err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
