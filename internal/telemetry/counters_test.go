package telemetry

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// fillSnapshot sets every int64 field of a CounterSnapshot to a distinct
// value derived from base, via reflection so a field added to the schema is
// covered automatically.
func fillSnapshot(base int64) CounterSnapshot {
	var s CounterSnapshot
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(base + int64(i))
	}
	return s
}

func TestSnapshotSubZeroPrev(t *testing.T) {
	s := fillSnapshot(100)
	if got := s.Sub(CounterSnapshot{}); got != s {
		t.Fatalf("Sub(zero) changed the snapshot:\n got %+v\nwant %+v", got, s)
	}
}

func TestSnapshotSubSelf(t *testing.T) {
	s := fillSnapshot(42)
	if got := s.Sub(s); got != (CounterSnapshot{}) {
		t.Fatalf("s.Sub(s) = %+v, want all zeros", got)
	}
}

func TestSnapshotSubCoversEveryField(t *testing.T) {
	// after − before must differ in every field when every counter moved;
	// a Sub implementation that forgets a field leaves it zero here.
	before := fillSnapshot(10)
	after := fillSnapshot(25) // every field advanced by exactly 15
	d := after.Sub(before)
	v := reflect.ValueOf(d)
	for i := 0; i < v.NumField(); i++ {
		if got := v.Field(i).Int(); got != 15 {
			t.Errorf("Sub dropped field %s: got %d, want 15",
				v.Type().Field(i).Name, got)
		}
	}
}

func TestSnapshotSubWraparound(t *testing.T) {
	// Counters are monotone in practice, but Sub must still be a plain
	// field-wise two's-complement difference — no clamping, no panic — so a
	// (pathological) int64 rollover yields the mathematically consistent
	// small positive delta.
	var before, after CounterSnapshot
	before.SigmaEvals = math.MaxInt64
	after.SigmaEvals = math.MinInt64 // MaxInt64 + 1 wrapped
	d := after.Sub(before)
	if d.SigmaEvals != 1 {
		t.Fatalf("wraparound delta = %d, want 1", d.SigmaEvals)
	}
	// And the inverse direction gives the negated delta.
	if got := before.Sub(after).SigmaEvals; got != -1 {
		t.Fatalf("reverse wraparound delta = %d, want -1", got)
	}
}

func TestBackendInvariantZeroesExactlyTheBackendFields(t *testing.T) {
	s := fillSnapshot(1000)
	inv := s.BackendInvariant()
	zeroed := map[string]bool{
		"DijkstraRuns":      true,
		"EdgeRelaxations":   true,
		"RowCacheHits":      true,
		"RowCacheMisses":    true,
		"RowCacheComputes":  true,
		"RowCacheEvictions": true,
		"RowsMerged":        true,
		"RowsUnchanged":     true,
		"CandidatesPruned":  true,
	}
	sv, iv := reflect.ValueOf(s), reflect.ValueOf(inv)
	for i := 0; i < sv.NumField(); i++ {
		name := sv.Type().Field(i).Name
		got := iv.Field(i).Int()
		if zeroed[name] {
			if got != 0 {
				t.Errorf("BackendInvariant kept backend-dependent field %s = %d", name, got)
			}
		} else if got != sv.Field(i).Int() {
			t.Errorf("BackendInvariant changed solver field %s: %d -> %d",
				name, sv.Field(i).Int(), got)
		}
	}
}

func TestBackendInvariantZeroSnapshot(t *testing.T) {
	if got := (CounterSnapshot{}).BackendInvariant(); got != (CounterSnapshot{}) {
		t.Fatalf("zero.BackendInvariant() = %+v, want zero", got)
	}
}

func TestBackendInvariantIdempotent(t *testing.T) {
	s := fillSnapshot(7)
	once := s.BackendInvariant()
	if twice := once.BackendInvariant(); twice != once {
		t.Fatalf("BackendInvariant not idempotent:\n once %+v\ntwice %+v", once, twice)
	}
}

func TestSnapshotJSONFieldCountMatchesStruct(t *testing.T) {
	// The JSON round trip is load-bearing: the sweep aggregator and the obs
	// counter bridge both derive the metric namespace from it. Every struct
	// field must surface as exactly one distinct JSON key.
	body, err := json.Marshal(fillSnapshot(1))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var m map[string]int64
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	want := reflect.TypeOf(CounterSnapshot{}).NumField()
	if len(m) != want {
		t.Fatalf("snapshot JSON has %d keys, struct has %d fields", len(m), want)
	}
}
