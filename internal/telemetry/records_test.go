package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// stream builds a JSONL stream from events via the real encoder, so the
// tests exercise exactly what a sink would have written.
func stream(t *testing.T, events ...Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	for _, e := range events {
		s.Emit(e)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadRunRecordsExtractsOnlyRunKind(t *testing.T) {
	data := stream(t,
		RoundEvent{Algorithm: "greedy_sigma", Round: 0, Sigma: 3},
		RunRecord{Name: "greedy", Algorithm: "greedy_sigma", Seed: 7, Sigma: 3, WallMS: 1.5},
		SandwichEvent{Best: "sigma"},
		RunRecord{Name: "table1", Algorithm: "experiment", Sigma: -1},
	)
	recs, err := ReadRunRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "greedy" || recs[0].Seed != 7 || recs[0].Sigma != 3 {
		t.Fatalf("first record mangled: %+v", recs[0])
	}
	if recs[1].Algorithm != "experiment" || recs[1].Sigma != -1 {
		t.Fatalf("second record mangled: %+v", recs[1])
	}
}

func TestReadRunRecordsEmptyStream(t *testing.T) {
	recs, err := ReadRunRecords(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("got %d records from empty stream", len(recs))
	}
}

func TestReadRunRecordsRejectsWhatValidateRejects(t *testing.T) {
	good := stream(t, RunRecord{Name: "x", Algorithm: "greedy_sigma"})
	for name, mangle := range map[string]func([]byte) []byte{
		"truncated line":   func(b []byte) []byte { return b[:len(b)/2] },
		"not json":         func(b []byte) []byte { return append(b, []byte("not json\n")...) },
		"unknown kind":     func(b []byte) []byte { return append(b, []byte(`{"event":"mystery"}`+"\n")...) },
		"missing field":    func(b []byte) []byte { return append(b, []byte(`{"event":"run"}`+"\n")...) },
		"no discriminator": func(b []byte) []byte { return append(b, []byte(`{"sigma":3}`+"\n")...) },
		"counters not object": func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"counters":{`), []byte(`"counters":3,"x":{`), 1)
		},
	} {
		bad := mangle(append([]byte(nil), good...))
		if _, err := ReadRunRecords(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s: ReadRunRecords accepted a stream ValidateJSONL rejects", name)
		}
		if _, err := ValidateJSONL(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s: ValidateJSONL unexpectedly accepted the mangled stream", name)
		}
	}
}
