package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestEncodeEventLeadsWithKind(t *testing.T) {
	line, err := EncodeEvent(RoundEvent{Algorithm: "greedy_sigma", Round: 3, Gain: 2, Sigma: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(line, []byte(`{"event":"round",`)) {
		t.Fatalf("line does not lead with the discriminator: %s", line)
	}
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("line not valid JSON: %v\n%s", err, line)
	}
	if m["algorithm"] != "greedy_sigma" || m["round"] != float64(3) {
		t.Fatalf("fields lost in encoding: %v", m)
	}
}

func TestEncodeEventRequiredFieldsAlwaysPresent(t *testing.T) {
	// Zero values must still carry every required numeric field — the
	// schema promises "no omitempty on required fields".
	for kind, req := range requiredKeys {
		if len(req) == 0 {
			t.Errorf("kind %q has no required fields", kind)
		}
	}
	line, err := EncodeEvent(RunRecord{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"name", "algorithm", "seed", "workers", "quick", "n", "pairs", "candidates", "k", "p_t", "sigma", "max_sigma", "wall_ms", "counters"} {
		if _, ok := m[k]; !ok {
			t.Errorf("zero RunRecord missing %q: %s", k, line)
		}
	}
}

func TestEncodeEventOmitsNilShortcut(t *testing.T) {
	line, err := EncodeEvent(RoundEvent{Algorithm: "ea"})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(line, []byte(`"shortcut"`)) {
		t.Fatalf("nil shortcut should be omitted: %s", line)
	}
	sc := [2]int32{4, 9}
	line, err = EncodeEvent(RoundEvent{Algorithm: "greedy_sigma", Shortcut: &sc})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(line, []byte(`"shortcut":[4,9]`)) {
		t.Fatalf("shortcut not encoded: %s", line)
	}
}

func TestJSONLSinkWritesOneLinePerEvent(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Emit(RoundEvent{Algorithm: "greedy_sigma", Round: 0})
	s.Emit(SandwichEvent{Best: "sigma"})
	s.Emit(RunRecord{Name: "x", Algorithm: "greedy_sigma"})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), buf.String())
	}
	counts, err := ValidateJSONL(&buf)
	if err != nil {
		t.Fatalf("emitted stream does not validate: %v", err)
	}
	if counts["round"] != 1 || counts["sandwich"] != 1 || counts["run"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONL(&failWriter{n: 1})
	s.Emit(RoundEvent{})
	if err := s.Err(); err != nil {
		t.Fatalf("first write should succeed: %v", err)
	}
	s.Emit(RoundEvent{})
	if err := s.Err(); err == nil {
		t.Fatal("second write should have failed")
	}
	s.Emit(RoundEvent{}) // must not panic, error stays
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("error not sticky: %v", err)
	}
}

func TestJSONLSinkConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Emit(RoundEvent{Algorithm: "greedy_sigma", Round: g*50 + i})
			}
		}(g)
	}
	wg.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	counts, err := ValidateJSONL(&buf)
	if err != nil {
		t.Fatalf("interleaved emits corrupted the stream: %v", err)
	}
	if counts["round"] != 400 {
		t.Fatalf("want 400 round events, got %v", counts)
	}
}

func TestCountersSnapshotSubReset(t *testing.T) {
	var c Counters
	c.DijkstraRuns.Add(5)
	c.CandidateEvals.Add(100)
	before := c.Snapshot()
	c.DijkstraRuns.Add(2)
	c.SigmaEvals.Add(7)
	diff := c.Snapshot().Sub(before)
	if diff.DijkstraRuns != 2 || diff.SigmaEvals != 7 || diff.CandidateEvals != 0 {
		t.Fatalf("diff = %+v", diff)
	}
	c.Reset()
	if s := c.Snapshot(); s != (CounterSnapshot{}) {
		t.Fatalf("reset left %+v", s)
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	cases := []struct {
		name, line, wantErr string
	}{
		{"garbage", "not json", "not a JSON object"},
		{"no-discriminator", `{"round":1}`, "missing \"event\""},
		{"unknown-kind", `{"event":"bogus"}`, "unknown event kind"},
		{"missing-field", `{"event":"round","algorithm":"x"}`, "missing required field"},
		{"bad-counters", func() string {
			line, _ := EncodeEvent(RunRecord{})
			return strings.Replace(string(line), `"dijkstra_runs":0,`, "", 1)
		}(), "counters missing field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateJSONL(strings.NewReader(tc.line + "\n"))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestValidateJSONLAcceptsEveryKind(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	sc := [2]int32{1, 2}
	events := []Event{
		RoundEvent{Algorithm: "greedy_sigma", Shortcut: &sc},
		SandwichEvent{Best: "mu"},
		DynamicStepEvent{Shortcut: sc, PerInstanceSigma: []int{1, 2}},
		RunRecord{Name: "r", Algorithm: "greedy_sigma"},
	}
	for _, e := range events {
		s.Emit(e)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	counts, err := ValidateJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if counts[e.EventKind()] != 1 {
			t.Fatalf("kind %q not counted: %v", e.EventKind(), counts)
		}
	}
	// Blank lines are tolerated; line numbering still points at the
	// offender.
	_, err = ValidateJSONL(strings.NewReader("\n\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-3 error, got %v", err)
	}
}

func ExampleEncodeEvent() {
	line, _ := EncodeEvent(DynamicStepEvent{
		Shortcut:         [2]int32{3, 8},
		Selected:         1,
		PerInstanceSigma: []int{4, 5},
		Sigma:            9,
	})
	fmt.Println(string(line))
	// Output:
	// {"event":"dynamic_step","shortcut":[3,8],"selected":1,"per_instance_sigma":[4,5],"sigma":9}
}
