package telemetry

import (
	"bytes"
	"sync"
	"testing"
)

// collectSink gathers events under a mutex — the simplest conforming Sink.
type collectSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectSink) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectSink) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func TestFanoutForwardsToAttachedSinks(t *testing.T) {
	f := NewFanout()
	a, b := &collectSink{}, &collectSink{}
	f.Attach(a)
	f.Attach(b)
	f.Attach(nil) // nil attachments are ignored, not stored
	for i := 0; i < 5; i++ {
		f.Emit(RoundEvent{Round: i})
	}
	if a.len() != 5 || b.len() != 5 {
		t.Fatalf("attached sinks saw %d/%d events, want 5/5", a.len(), b.len())
	}
	if got := a.events[3].(RoundEvent).Round; got != 3 {
		t.Fatalf("events out of order: round %d at index 3", got)
	}
}

func TestFanoutSubscriptionReceivesInOrder(t *testing.T) {
	f := NewFanout()
	sub := f.Subscribe(16)
	for i := 0; i < 10; i++ {
		f.Emit(RoundEvent{Round: i})
	}
	sub.Close()
	i := 0
	for e := range sub.Events() {
		if got := e.(RoundEvent).Round; got != i {
			t.Fatalf("event %d has round %d", i, got)
		}
		i++
	}
	if i != 10 {
		t.Fatalf("received %d events, want 10", i)
	}
	if d := f.Dropped(); d != 0 {
		t.Fatalf("Dropped() = %d with a keeping-up subscriber", d)
	}
}

func TestFanoutSlowSubscriberDropsInsteadOfBlocking(t *testing.T) {
	f := NewFanout()
	sub := f.Subscribe(2)
	// Nothing reads sub: after the buffer fills, Emit must complete anyway.
	for i := 0; i < 10; i++ {
		f.Emit(RoundEvent{Round: i})
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("subscription dropped %d events, want 8", got)
	}
	if got := f.Dropped(); got != 8 {
		t.Fatalf("fanout Dropped() = %d, want 8", got)
	}
	sub.Close()
	// Drops survive the subscription: they fold into the fanout's total.
	if got := f.Dropped(); got != 8 {
		t.Fatalf("fanout Dropped() = %d after Close, want 8", got)
	}
	if got := f.Subscribers(); got != 0 {
		t.Fatalf("Subscribers() = %d after Close, want 0", got)
	}
}

func TestFanoutSubscriptionCloseIdempotent(t *testing.T) {
	f := NewFanout()
	sub := f.Subscribe(0)
	sub.Close()
	sub.Close() // must not panic (double channel close) or deadlock
	if _, ok := <-sub.Events(); ok {
		t.Fatal("Events() channel still open after Close")
	}
}

// TestFanoutConcurrentStress is the -race exercise for the fanout: many
// emitters racing many subscribers that attach, read, and detach while
// events are in flight, plus an attached ring recorder. The assertions are
// weak (no panic, no deadlock, attached sink saw everything); the value is
// the race detector's.
func TestFanoutConcurrentStress(t *testing.T) {
	f := NewFanout()
	ring := NewRing(64)
	f.Attach(ring)
	const (
		emitters  = 4
		perEmit   = 200
		consumers = 6
	)
	var emitWG, consWG sync.WaitGroup
	for e := 0; e < emitters; e++ {
		emitWG.Add(1)
		go func(id int) {
			defer emitWG.Done()
			for i := 0; i < perEmit; i++ {
				f.Emit(RoundEvent{Round: id*perEmit + i})
			}
		}(e)
	}
	subs := make([]*Subscription, consumers)
	for c := 0; c < consumers; c++ {
		sub := f.Subscribe(8)
		subs[c] = sub
		consWG.Add(1)
		go func(sub *Subscription) {
			defer consWG.Done()
			for i := 0; i < 50; i++ {
				if _, ok := <-sub.Events(); !ok {
					return
				}
			}
			sub.Close() // fast consumer: detach while emitters still run
		}(sub)
	}
	emitWG.Wait()
	// A consumer that lost events to drops will never see its 50th event;
	// closing from here exercises cross-goroutine Close waking a blocked
	// receive. Close is idempotent, so racing the fast path is fine.
	for _, sub := range subs {
		sub.Close()
	}
	consWG.Wait()
	// Late subscribers may have closed before all events flowed; but the
	// attached ring saw every emission synchronously.
	if got := ring.Total(); got != emitters*perEmit {
		t.Fatalf("ring recorded %d events, want %d", got, emitters*perEmit)
	}
	// Consumers that exited early leave buffered events behind; Dropped must
	// still be readable and non-negative.
	if f.Dropped() < 0 {
		t.Fatal("negative drop count")
	}
}

func TestRingSinkWraparoundKeepsNewest(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Emit(RoundEvent{Round: i})
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10", got)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	for i, e := range events {
		if got := e.(RoundEvent).Round; got != 6+i {
			t.Fatalf("ring[%d].Round = %d, want %d (oldest-first newest-4)", i, got, 6+i)
		}
	}
}

func TestRingSinkPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Emit(RoundEvent{Round: 0})
	r.Emit(CheckpointEvent{Round: 1})
	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("ring holds %d events, want 2", len(events))
	}
	if _, ok := events[1].(CheckpointEvent); !ok {
		t.Fatalf("ring[1] = %T, want CheckpointEvent", events[1])
	}
}

func TestRingSinkClampsCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("NewRing(0).Cap() = %d, want 1", r.Cap())
	}
	r.Emit(RoundEvent{Round: 7})
	r.Emit(RoundEvent{Round: 8})
	if got := r.Events()[0].(RoundEvent).Round; got != 8 {
		t.Fatalf("single-slot ring holds round %d, want 8", got)
	}
}

// TestRingSinkWriteJSONLValidates pins the flight-recorder contract: a dump
// is a schema-valid JSONL document — the same validator CI runs over
// mscbench output accepts it.
func TestRingSinkWriteJSONLValidates(t *testing.T) {
	r := NewRing(16)
	r.Emit(RoundEvent{Algorithm: "greedy_sigma", Round: 0, Gain: 2})
	r.Emit(SandwichEvent{Best: "sigma"})
	r.Emit(DynamicStepEvent{Sigma: 2})
	r.Emit(CheckpointEvent{Round: 1})
	r.Emit(RunRecord{Name: "t", Algorithm: "greedy_sigma"})
	var buf bytes.Buffer
	n, err := r.WriteJSONL(&buf)
	if err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if n != 5 {
		t.Fatalf("WriteJSONL wrote %d events, want 5", n)
	}
	counts, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("flight dump fails schema validation: %v", err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("validator counted %d events, want 5", total)
	}
}

// TestRingSinkConcurrentEmitAndDump races recorders against dumpers — the
// snapshot-under-lock, encode-outside-lock path must hold up under -race.
func TestRingSinkConcurrentEmitAndDump(t *testing.T) {
	r := NewRing(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(RoundEvent{Round: id*100 + i})
			}
		}(w)
	}
	for d := 0; d < 2; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var buf bytes.Buffer
				if _, err := r.WriteJSONL(&buf); err != nil {
					t.Errorf("concurrent WriteJSONL: %v", err)
					return
				}
				if _, err := ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
					t.Errorf("concurrent dump invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Total(); got != 400 {
		t.Fatalf("Total() = %d, want 400", got)
	}
}
