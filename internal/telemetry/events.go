package telemetry

// Event is a typed telemetry payload. EventKind returns the stable "event"
// discriminator value the JSONL encoding leads with; the set of kinds is
// part of the run-record schema consumed by CI and BENCH aggregation.
type Event interface {
	EventKind() string
}

// RoundEvent traces one round of an iterative placement algorithm: one
// greedy round of GreedySigma, one iteration of EA/AEA, one swap of
// LocalSearch. σ/μ/ν values let a trace reconstruct the sandwich-bound
// trajectory; the per-shard wall-clock extrema expose load imbalance in
// the parallel candidate scans.
type RoundEvent struct {
	// Algorithm identifies the emitter: "greedy_sigma", "ea", "aea",
	// "local_search".
	Algorithm string `json:"algorithm"`
	// Round is the 0-based round (or iteration) index.
	Round int `json:"round"`
	// Shortcut is the edge chosen this round (endpoint node ids), nil when
	// the round chose none (e.g. a rejected EA offspring).
	Shortcut *[2]int32 `json:"shortcut,omitempty"`
	// Gain is the σ improvement over the state the round started from.
	Gain int `json:"gain"`
	// Sigma is σ of the algorithm's incumbent after the round.
	Sigma int `json:"sigma"`
	// SigmaWorst is the survivable worst-case σ⁻ of the incumbent after the
	// round; nil for fault-free runs (core.SurviveNone). When set, Gain is
	// measured on the lexicographic objective (σ⁻, σ), not on σ alone.
	SigmaWorst *int `json:"sigma_worst,omitempty"`
	// Selected is the incumbent selection size after the round.
	Selected int `json:"selected"`
	// Candidates is the number of candidate evaluations this round scanned
	// (0 for rounds that evaluate whole selections instead).
	Candidates int `json:"candidates"`
	// Mu and Nu are the sandwich bounds of the incumbent selection, when
	// the emitter computes them (GreedySigma rounds); both 0 otherwise.
	// Both are -1 when the problem reports the coverage structures behind
	// the bounds intractable (O(n²) candidate sets at million-node scale).
	Mu float64 `json:"mu"`
	Nu float64 `json:"nu"`
	// ElapsedNS is the wall-clock time of the round.
	ElapsedNS int64 `json:"elapsed_ns"`
	// ShardMinNS/ShardMaxNS are the fastest and slowest per-shard wall
	// times of the round's sharded candidate scan, and Shards the shard
	// count; all 0 when the round ran no instrumented scan.
	ShardMinNS int64 `json:"shard_min_ns"`
	ShardMaxNS int64 `json:"shard_max_ns"`
	Shards     int   `json:"shards"`
	// Incremental-evaluation work of the round (core.EvalStats):
	// RowsMerged/RowsUnchanged split the endpoint distance rows by whether
	// the committed shortcut's O(n) merge changed them; PairsRescanned/
	// PairsSkipped split the round's gains scan by whether a pair's
	// per-candidate contribution had to be recomputed. All 0 on the
	// rebuild evaluation path and for emitters without incremental state.
	RowsMerged     int64 `json:"rows_merged"`
	RowsUnchanged  int64 `json:"rows_unchanged"`
	PairsRescanned int64 `json:"pairs_rescanned"`
	PairsSkipped   int64 `json:"pairs_skipped"`
}

// EventKind implements Event.
func (RoundEvent) EventKind() string { return "round" }

// SandwichEvent summarizes a Sandwich (approximation algorithm AA) run:
// the three greedy arms, the winner, and the data-dependent bound.
type SandwichEvent struct {
	// SigmaMu, SigmaSigma, SigmaNu are σ of the three greedy arms.
	SigmaMu    int `json:"sigma_mu"`
	SigmaSigma int `json:"sigma_sigma"`
	SigmaNu    int `json:"sigma_nu"`
	// Best names the winning arm: "mu", "sigma", or "nu".
	Best string `json:"best"`
	// Sigma is σ of the winning placement.
	Sigma int `json:"sigma"`
	// SigmaWorst is σ⁻ of the winning placement under the problem's
	// survivability mode; nil for fault-free runs. Survivable runs pick the
	// winner lexicographically by (σ⁻, σ) instead of by σ.
	SigmaWorst *int `json:"sigma_worst,omitempty"`
	// Ratio is σ(F_σ)/ν(F_σ) and ApproxFactor is Ratio·(1−1/e) — the
	// computable guarantee of Eq. (5).
	Ratio        float64 `json:"ratio"`
	ApproxFactor float64 `json:"approx_factor"`
	NuAtFSigma   float64 `json:"nu_at_f_sigma"`
	// ElapsedNS is the wall-clock time of the whole sandwich run.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// EventKind implements Event.
func (SandwichEvent) EventKind() string { return "sandwich" }

// DynamicStepEvent is emitted by the dynamic problem each time a solver
// commits a shortcut: the per-time-instance σ breakdown of the new
// selection, exposing which time instances a shortcut serves.
type DynamicStepEvent struct {
	// Shortcut is the committed edge (endpoint node ids).
	Shortcut [2]int32 `json:"shortcut"`
	// Selected is the selection size after the commit.
	Selected int `json:"selected"`
	// PerInstanceSigma holds σ_i for each time instance.
	PerInstanceSigma []int `json:"per_instance_sigma"`
	// Sigma is Σ_i σ_i.
	Sigma int `json:"sigma"`
}

// EventKind implements Event.
func (DynamicStepEvent) EventKind() string { return "dynamic_step" }

// CheckpointSolution is one archived solution inside a CheckpointEvent.
type CheckpointSolution struct {
	// Selection holds sorted candidate indices.
	Selection []int `json:"selection"`
	// Sigma is σ(Selection).
	Sigma int `json:"sigma"`
}

// CheckpointEvent snapshots a resumable randomized solver (EA/AEA) at an
// iteration boundary: the RNG stream position, the population, the best
// feasible solution so far, and the iteration count. Restoring all four and
// continuing reproduces the straight-through run bit for bit, which
// checkpoint_test.go locks in. Events ride the same JSONL telemetry stream
// as round traces; `mscplace -resume f.jsonl` picks up the last one.
type CheckpointEvent struct {
	// Algorithm identifies the solver the snapshot belongs to: "ea" or
	// "aea". Resume refuses snapshots from a different algorithm.
	Algorithm string `json:"algorithm"`
	// Round is the number of iterations completed when the snapshot was
	// taken; the resumed run continues with iteration Round.
	Round int `json:"round"`
	// Seed and Draws locate the RNG stream position (xrand.Rand.State).
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
	// Population is the solver's archive in its internal order.
	Population []CheckpointSolution `json:"population"`
	// Best is the best feasible solution found so far.
	Best CheckpointSolution `json:"best"`
	// Evaluations counts σ evaluations performed so far (EA; 0 for AEA).
	Evaluations int `json:"evaluations"`
}

// EventKind implements Event.
func (CheckpointEvent) EventKind() string { return "checkpoint" }

// RunRecord is the machine-readable record of one solver or experiment
// run. The schema is stable: every field below is always present (ints
// default to 0, Sigma to −1 when no single σ applies) so CI validation and
// BENCH_*.json aggregation can rely on it.
type RunRecord struct {
	// Name identifies the run: an experiment id for mscbench ("table1"),
	// the algorithm name for mscplace.
	Name string `json:"name"`
	// Algorithm is the placement algorithm, or "experiment" for whole
	// mscbench experiment runs.
	Algorithm string `json:"algorithm"`
	// Seed is the random seed driving the run.
	Seed int64 `json:"seed"`
	// Workers is the resolved candidate-scan parallelism (0 = default).
	Workers int `json:"workers"`
	// DistBackend records the distance backend the run was launched with
	// ("auto", "dense", "lazy", "bounded"); "" for runs that predate the
	// field.
	DistBackend string `json:"dist_backend"`
	// EvalMode records the search evaluation mode the run was launched
	// with ("auto", "incremental", "rebuild"); "" for runs that predate
	// the field.
	EvalMode string `json:"eval_mode"`
	// Survive records the survivability mode the run was launched with
	// ("none", "shortcut", "node"); "" for runs that predate the field.
	Survive string `json:"survive"`
	// Quick marks reduced-scale smoke runs.
	Quick bool `json:"quick"`
	// Instance shape: node count, important pairs, candidate-universe
	// size, budget, threshold. Zero when the run spans many instances.
	N          int     `json:"n"`
	Pairs      int     `json:"pairs"`
	Candidates int     `json:"candidates"`
	K          int     `json:"k"`
	Pt         float64 `json:"p_t"`
	// Budget is the knapsack budget B of a budget-weighted run; 0 for
	// cardinality runs (and runs that predate the field). CostSpent is the
	// total price of the final placement under the run's cost model, and
	// CostModel names that model ("unit", "length", "table"); "" for
	// cardinality runs.
	Budget    float64 `json:"budget"`
	CostSpent float64 `json:"cost_spent"`
	CostModel string  `json:"cost_model"`
	// Sigma is σ achieved and MaxSigma the achievable maximum; Sigma is −1
	// when the run has no single σ (e.g. a whole experiment suite).
	Sigma    int `json:"sigma"`
	MaxSigma int `json:"max_sigma"`
	// SigmaWorst is the survivable worst-case σ⁻ of the final placement; −1
	// for fault-free runs and runs with no single placement.
	SigmaWorst int `json:"sigma_worst"`
	// WallMS is the run's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// RowBytesResident is the process-wide distance-row payload resident
	// at emission time (lazy dense rows, bounded sparse rows, landmark
	// potentials); 0 for runs that predate the field. Unlike the
	// counters, it is a level, not a delta — the number behind the
	// "bytes/row scales with the d_t-ball" claim.
	RowBytesResident int64 `json:"row_bytes_resident"`
	// ShardImbalance is the mean relative per-shard wall-time imbalance
	// (max−min)/max over the run's timed candidate scans: 0 = perfectly
	// balanced shards (and for runs without timed scans — EA/AEA rounds
	// evaluate whole selections and never shard a candidate scan).
	ShardImbalance float64 `json:"shard_imbalance"`
	// Counters is the work performed by the run (snapshot difference of
	// the global counters).
	Counters CounterSnapshot `json:"counters"`
	// StopReason records how the solver run ended — "converged",
	// "deadline", "canceled", "eval_budget" — or "" for runs that predate
	// supervision or have no single solver loop (experiment suites).
	StopReason string `json:"stop_reason"`
}

// EventKind implements Event.
func (RunRecord) EventKind() string { return "run" }
