// Package pairs models the set S of important social pairs (paper §III-B)
// and its derived quantities: per-node endpoint weights for the upper-bound
// function ν (§V-B2), common-node detection for the MSC-CN special case
// (§IV), and the threshold-violating pair sampler used by the evaluation
// (§VII-A3).
package pairs

import (
	"errors"
	"fmt"

	"msc/internal/graph"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

// Pair is an unordered important social pair {U, W}. Canonical form has
// U < W.
type Pair struct {
	U, W graph.NodeID
}

// New returns the canonical form of the pair {u, w}.
func New(u, w graph.NodeID) Pair {
	if u > w {
		u, w = w, u
	}
	return Pair{U: u, W: w}
}

// String renders the pair as "{u, w}".
func (p Pair) String() string { return fmt.Sprintf("{%d, %d}", p.U, p.W) }

// Errors returned by NewSet.
var (
	ErrSelfPair  = errors.New("pairs: pair with identical endpoints")
	ErrDupPair   = errors.New("pairs: duplicate pair")
	ErrNodeRange = errors.New("pairs: node id out of range")
	ErrEmpty     = errors.New("pairs: empty pair set")
)

// Set is an immutable set of important social pairs over nodes [0, n).
type Set struct {
	n     int
	pairs []Pair
	// weight[v] = (number of appearances of v across pairs) / 2, the node
	// weight from §V-B2. Stored sparsely.
	weight map[graph.NodeID]float64
}

// NewSet validates and builds a pair set for a graph with n nodes. Pairs
// are canonicalized; duplicates and self-pairs are rejected.
func NewSet(n int, ps []Pair) (*Set, error) {
	if len(ps) == 0 {
		return nil, ErrEmpty
	}
	seen := make(map[Pair]struct{}, len(ps))
	canon := make([]Pair, 0, len(ps))
	weight := make(map[graph.NodeID]float64)
	for _, p := range ps {
		c := New(p.U, p.W)
		switch {
		case c.U == c.W:
			return nil, fmt.Errorf("%w: %v", ErrSelfPair, p)
		case c.U < 0 || int(c.W) >= n:
			return nil, fmt.Errorf("%w: %v with n=%d", ErrNodeRange, p, n)
		}
		if _, dup := seen[c]; dup {
			return nil, fmt.Errorf("%w: %v", ErrDupPair, c)
		}
		seen[c] = struct{}{}
		canon = append(canon, c)
		weight[c.U] += 0.5
		weight[c.W] += 0.5
	}
	return &Set{n: n, pairs: canon, weight: weight}, nil
}

// MustNewSet is NewSet but panics on error; for tests and examples.
func MustNewSet(n int, ps []Pair) *Set {
	s, err := NewSet(n, ps)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of pairs m.
func (s *Set) Len() int { return len(s.pairs) }

// N returns the node universe size.
func (s *Set) N() int { return s.n }

// Pairs returns the canonical pairs. Callers must not modify the slice.
func (s *Set) Pairs() []Pair { return s.pairs }

// At returns the i-th pair.
func (s *Set) At(i int) Pair { return s.pairs[i] }

// Weight returns the ν node weight of v: half the number of times v appears
// across the pair set (0 for uninvolved nodes).
func (s *Set) Weight(v graph.NodeID) float64 { return s.weight[v] }

// Nodes returns the distinct nodes that appear in at least one pair.
func (s *Set) Nodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.weight))
	for v := range s.weight {
		out = append(out, v)
	}
	sortNodeIDs(out)
	return out
}

// CommonNode returns a node shared by every pair, if one exists. When it
// does, the instance is an MSC-CN instance (§IV) and the specialized
// max-coverage greedy applies.
func (s *Set) CommonNode() (graph.NodeID, bool) {
	first := s.pairs[0]
	for _, cand := range []graph.NodeID{first.U, first.W} {
		shared := true
		for _, p := range s.pairs[1:] {
			if p.U != cand && p.W != cand {
				shared = false
				break
			}
		}
		if shared {
			return cand, true
		}
	}
	return -1, false
}

// TotalWeight returns Σ_v Weight(v), which equals the number of pairs m.
func (s *Set) TotalWeight() float64 {
	total := 0.0
	for _, w := range s.weight {
		total += w
	}
	return total
}

// SampleViolating randomly selects m distinct pairs whose current
// shortest-path distance exceeds dt (i.e. pairs whose connection is NOT
// maintained by the raw network), matching the evaluation setup of
// §VII-A3. It returns an error if fewer than m such pairs exist.
func SampleViolating(t shortestpath.DistanceSource, dt float64, m int, rng *xrand.Rand) (*Set, error) {
	n := t.N()
	var candidates []Pair
	for u := 0; u < n; u++ {
		row := t.Row(graph.NodeID(u))
		for w := u + 1; w < n; w++ {
			if row[w] > dt {
				candidates = append(candidates, Pair{U: graph.NodeID(u), W: graph.NodeID(w)})
			}
		}
	}
	if len(candidates) < m {
		return nil, fmt.Errorf("pairs: only %d pairs violate d_t=%.4g, need %d", len(candidates), dt, m)
	}
	idx := rng.SampleDistinct(len(candidates), m)
	chosen := make([]Pair, m)
	for i, j := range idx {
		chosen[i] = candidates[j]
	}
	return NewSet(n, chosen)
}

// SampleViolatingRandom selects m distinct pairs violating dt by
// rejection sampling point queries instead of enumerating all ~n²/2
// candidates the way SampleViolating does: it draws uniform random pairs
// and keeps those with Dist(u, w) > dt. Rejection sampling is uniform
// over the accept set, so the distribution matches SampleViolating; only
// the draw sequence differs. This is the scale path (10⁴–10⁶ nodes),
// where it composes with BoundedTable: distances beyond the reach read
// +Inf > dt, so one sparse row lookup answers each trial. It fails after
// maxAttempts draws (0 means 1000·m) that fail to produce enough
// distinct violating pairs — the regime where violating pairs are rare
// and the exhaustive scan is the right tool.
func SampleViolatingRandom(t shortestpath.DistanceSource, dt float64, m int, rng *xrand.Rand, maxAttempts int) (*Set, error) {
	n := t.N()
	if m <= 0 {
		return nil, fmt.Errorf("pairs: need a positive sample size, got %d", m)
	}
	if maxAttempts <= 0 {
		maxAttempts = 1000 * m
	}
	seen := make(map[Pair]struct{}, m)
	chosen := make([]Pair, 0, m)
	for tries := 0; len(chosen) < m; tries++ {
		if tries >= maxAttempts {
			return nil, fmt.Errorf("pairs: found %d pairs violating d_t=%.4g in %d random draws, need %d", len(chosen), dt, maxAttempts, m)
		}
		p := New(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		if p.U == p.W {
			continue
		}
		if _, dup := seen[p]; dup {
			continue
		}
		if t.Dist(p.U, p.W) > dt {
			seen[p] = struct{}{}
			chosen = append(chosen, p)
		}
	}
	return NewSet(n, chosen)
}

// SampleViolatingWithCommonNode selects m pairs that all contain the given
// common node u and currently violate dt; for constructing MSC-CN
// instances. It returns an error if fewer than m such pairs exist.
func SampleViolatingWithCommonNode(t shortestpath.DistanceSource, dt float64, m int, u graph.NodeID, rng *xrand.Rand) (*Set, error) {
	n := t.N()
	row := t.Row(u)
	var candidates []Pair
	for w := 0; w < n; w++ {
		if graph.NodeID(w) != u && row[w] > dt {
			candidates = append(candidates, New(u, graph.NodeID(w)))
		}
	}
	if len(candidates) < m {
		return nil, fmt.Errorf("pairs: only %d common-node pairs violate d_t=%.4g, need %d", len(candidates), dt, m)
	}
	idx := rng.SampleDistinct(len(candidates), m)
	chosen := make([]Pair, m)
	for i, j := range idx {
		chosen[i] = candidates[j]
	}
	return NewSet(n, chosen)
}

func sortNodeIDs(ids []graph.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
