package pairs

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"msc/internal/graph"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

func TestNewCanonical(t *testing.T) {
	p := New(5, 2)
	if p.U != 2 || p.W != 5 {
		t.Fatalf("New(5,2) = %v", p)
	}
	if p.String() != "{2, 5}" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestNewSetValidation(t *testing.T) {
	cases := []struct {
		ps   []Pair
		want error
	}{
		{nil, ErrEmpty},
		{[]Pair{{U: 1, W: 1}}, ErrSelfPair},
		{[]Pair{{U: 0, W: 9}}, ErrNodeRange},
		{[]Pair{{U: 0, W: 1}, {U: 1, W: 0}}, ErrDupPair},
	}
	for i, tc := range cases {
		if _, err := NewSet(5, tc.ps); !errors.Is(err, tc.want) {
			t.Errorf("case %d: err = %v, want %v", i, err, tc.want)
		}
	}
}

func TestWeightsHalveMultiplicity(t *testing.T) {
	// S = {{0,1},{0,2}}: node 0 appears twice → weight 1; 1, 2 → 0.5.
	s := MustNewSet(4, []Pair{{U: 0, W: 1}, {U: 0, W: 2}})
	if w := s.Weight(0); w != 1 {
		t.Fatalf("weight(0) = %v, want 1", w)
	}
	if w := s.Weight(1); w != 0.5 {
		t.Fatalf("weight(1) = %v, want 0.5", w)
	}
	if w := s.Weight(3); w != 0 {
		t.Fatalf("weight(3) = %v, want 0 (uninvolved)", w)
	}
	// Σ weights = m, the identity ν's definition relies on.
	if tw := s.TotalWeight(); tw != 2 {
		t.Fatalf("TotalWeight = %v, want m=2", tw)
	}
	nodes := s.Nodes()
	if len(nodes) != 3 || nodes[0] != 0 || nodes[2] != 2 {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestCommonNode(t *testing.T) {
	s := MustNewSet(5, []Pair{{U: 2, W: 0}, {U: 2, W: 4}, {U: 1, W: 2}})
	u, ok := s.CommonNode()
	if !ok || u != 2 {
		t.Fatalf("CommonNode = %v, %v", u, ok)
	}
	s2 := MustNewSet(5, []Pair{{U: 0, W: 1}, {U: 2, W: 3}})
	if _, ok := s2.CommonNode(); ok {
		t.Fatal("false common node")
	}
	// Single pair: either endpoint is common; must return one of them.
	s3 := MustNewSet(5, []Pair{{U: 3, W: 4}})
	u3, ok3 := s3.CommonNode()
	if !ok3 || (u3 != 3 && u3 != 4) {
		t.Fatalf("single pair common = %v, %v", u3, ok3)
	}
}

func lineTable(t *testing.T, n int) *shortestpath.Table {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return shortestpath.NewTable(g, 0)
}

func TestSampleViolating(t *testing.T) {
	table := lineTable(t, 10) // distances = hop counts
	rng := xrand.New(1)
	// d_t = 2.5: violating pairs are those ≥ 3 hops apart.
	s, err := SampleViolating(table, 2.5, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("sampled %d pairs", s.Len())
	}
	for _, p := range s.Pairs() {
		if table.Dist(p.U, p.W) <= 2.5 {
			t.Fatalf("pair %v does not violate", p)
		}
	}
}

func TestSampleViolatingInsufficient(t *testing.T) {
	table := lineTable(t, 3)
	if _, err := SampleViolating(table, 100, 1, xrand.New(1)); err == nil {
		t.Fatal("expected error: no pair violates a huge threshold")
	}
}

func TestSampleViolatingRandom(t *testing.T) {
	table := lineTable(t, 12)
	rng := xrand.New(3)
	s, err := SampleViolatingRandom(table, 2.5, 6, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Fatalf("sampled %d pairs, want 6", s.Len())
	}
	for _, p := range s.Pairs() {
		if table.Dist(p.U, p.W) <= 2.5 {
			t.Fatalf("pair %v does not violate", p)
		}
	}
	// Deterministic: equal seeds reproduce the sample exactly.
	again, err := SampleViolatingRandom(table, 2.5, 6, xrand.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Pairs(), again.Pairs()) {
		t.Fatalf("same seed sampled %v then %v", s.Pairs(), again.Pairs())
	}
}

func TestSampleViolatingRandomExhaustsAttempts(t *testing.T) {
	table := lineTable(t, 6)
	// No pair violates a huge threshold: the sampler must give up at
	// maxAttempts instead of spinning forever.
	if _, err := SampleViolatingRandom(table, 100, 2, xrand.New(1), 50); err == nil {
		t.Fatal("expected error: no pair violates a huge threshold")
	}
	if _, err := SampleViolatingRandom(table, 2.5, 0, xrand.New(1), 0); err == nil {
		t.Fatal("expected error: non-positive sample size")
	}
}

func TestSampleViolatingWithCommonNode(t *testing.T) {
	table := lineTable(t, 12)
	rng := xrand.New(2)
	s, err := SampleViolatingWithCommonNode(table, 2.5, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Pairs() {
		if p.U != 0 && p.W != 0 {
			t.Fatalf("pair %v misses common node", p)
		}
		if table.Dist(p.U, p.W) <= 2.5 {
			t.Fatalf("pair %v does not violate", p)
		}
	}
	u, ok := s.CommonNode()
	if !ok || u != 0 {
		t.Fatalf("common node = %v, %v", u, ok)
	}
}

func TestSampleViolatingWithCommonNodeInsufficient(t *testing.T) {
	table := lineTable(t, 4)
	if _, err := SampleViolatingWithCommonNode(table, 2.5, 3, 0, xrand.New(1)); err == nil {
		t.Fatal("expected error")
	}
}

func TestSampleViolatingDisconnected(t *testing.T) {
	// Disconnected graph: Inf distances violate any threshold.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	table := shortestpath.NewTable(g, 0)
	s, err := SampleViolating(table, 10, 3, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Pairs() {
		if !math.IsInf(table.Dist(p.U, p.W), 1) {
			t.Fatalf("pair %v should be disconnected", p)
		}
	}
}

func TestAtAndLen(t *testing.T) {
	s := MustNewSet(4, []Pair{{U: 3, W: 1}, {U: 0, W: 2}})
	if s.Len() != 2 || s.N() != 4 {
		t.Fatal("Len/N wrong")
	}
	if p := s.At(0); p.U != 1 || p.W != 3 {
		t.Fatalf("At(0) = %v (should be canonical)", p)
	}
}
