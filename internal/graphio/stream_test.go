package graphio

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
)

// TestWriteJSONStreamDecodeEqual is the streaming writer's contract: for
// the same instance, ReadJSON must decode WriteJSONStream's output to the
// exact Document FromGraph would have built — coords, labels, edge
// probabilities and pairs bit-for-bit, optional fields present or absent
// identically.
func TestWriteJSONStreamDecodeEqual(t *testing.T) {
	g := sampleGraph(t)
	ps := pairs.MustNewSet(4, []pairs.Pair{{U: 0, W: 3}, {U: 1, W: 3}})

	var buf bytes.Buffer
	if err := WriteJSONStream(&buf, g, ps, 0.25, 2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("stream output failed to decode: %v\n%s", err, buf.Bytes())
	}
	want := FromGraph(g, ps, 0.25, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed document differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestWriteJSONStreamOmitsEmpty checks the omitempty parity with
// WriteJSON for a bare graph: no coords, no labels, no pairs, zero
// threshold and budget.
func TestWriteJSONStreamOmitsEmpty(t *testing.T) {
	g, err := graph.NewBuilder(3).
		AddEdge(0, 1, failprob.LengthFromProb(0.5)).
		AddEdge(1, 2, failprob.LengthFromProb(0.5)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONStream(&buf, g, nil, 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"coords", "labels", "pairs", "failure_threshold", "budget"} {
		if bytes.Contains(buf.Bytes(), []byte(field)) {
			t.Errorf("empty field %q serialized: %s", field, buf.Bytes())
		}
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if want := FromGraph(g, nil, 0, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed document differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestWriteJSONStreamRejectsNonFinite: a NaN threshold must surface as a
// *ValidationError, mirroring what ReadJSON would reject on the way back
// in, instead of emitting JSON that no decoder accepts.
func TestWriteJSONStreamRejectsNonFinite(t *testing.T) {
	g := sampleGraph(t)
	var buf bytes.Buffer
	err := WriteJSONStream(&buf, g, nil, math.NaN(), 0)
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("NaN threshold: err = %v, want *ValidationError", err)
	}
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("error %v does not unwrap to ErrInvalid", err)
	}
}
