package graphio

import (
	"errors"
	"fmt"
	"math"

	"msc/internal/graph"
)

// ErrInvalid is the sentinel wrapped by every input-validation failure in
// this package; callers branch on errors.Is(err, ErrInvalid) to separate
// hostile or malformed files from I/O failures.
var ErrInvalid = errors.New("graphio: invalid input")

// MaxNodes caps the node count a decoded document or edge list may
// declare. Node ids size allocations (adjacency lists, distance tables),
// so a hostile file claiming 2^31 nodes must be rejected at parse time,
// not at the first out-of-memory allocation. Large-scale callers may
// raise it.
var MaxNodes = 4 << 20

// ValidationError pinpoints one malformed field of an input document or
// edge list. It unwraps to ErrInvalid.
type ValidationError struct {
	// Format is the input codec: "json" or "edgelist".
	Format string
	// Field names the offending field, e.g. "edges[3].p_fail".
	Field string
	// Line is the 1-based source line for line-oriented formats; 0 when
	// the format has no useful line structure.
	Line int
	// Msg says what is wrong with the value.
	Msg string
}

func (e *ValidationError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("graphio: %s line %d: %s: %s", e.Format, e.Line, e.Field, e.Msg)
	}
	return fmt.Sprintf("graphio: %s: %s: %s", e.Format, e.Field, e.Msg)
}

func (e *ValidationError) Unwrap() error { return ErrInvalid }

func jsonErr(field, format string, args ...any) error {
	return &ValidationError{Format: "json", Field: field, Msg: fmt.Sprintf(format, args...)}
}

func lineErr(line int, field, format string, args ...any) error {
	return &ValidationError{Format: "edgelist", Field: field, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Validate checks the document's structural invariants — everything the
// solvers assume and the graph builder cannot express as a typed error:
// node count in (0, MaxNodes], coordinate/label arity, finite
// coordinates, edge endpoints in range with p_fail ∈ [0, 1) and no NaN/∞,
// no self-loops or duplicate edges, pairs in range and distinct, the
// threshold in [0, 1), and a non-negative budget. ReadJSON calls it on
// every decoded document; callers constructing documents in code may call
// it directly.
func (doc Document) Validate() error {
	if doc.Nodes <= 0 {
		return jsonErr("nodes", "must be positive, got %d", doc.Nodes)
	}
	if doc.Nodes > MaxNodes {
		return jsonErr("nodes", "%d exceeds the %d-node cap", doc.Nodes, MaxNodes)
	}
	if doc.Coords != nil && len(doc.Coords) != doc.Nodes {
		return jsonErr("coords", "%d entries for %d nodes", len(doc.Coords), doc.Nodes)
	}
	for i, c := range doc.Coords {
		if !isFinite(c[0]) || !isFinite(c[1]) {
			return jsonErr(fmt.Sprintf("coords[%d]", i), "non-finite position (%v, %v)", c[0], c[1])
		}
	}
	if doc.Labels != nil && len(doc.Labels) != doc.Nodes {
		return jsonErr("labels", "%d entries for %d nodes", len(doc.Labels), doc.Nodes)
	}
	seenEdges := make(map[[2]int32]bool, len(doc.Edges))
	for i, e := range doc.Edges {
		field := fmt.Sprintf("edges[%d]", i)
		if e.U < 0 || e.V < 0 || int(e.U) >= doc.Nodes || int(e.V) >= doc.Nodes {
			return jsonErr(field, "endpoint (%d,%d) outside 0..%d", e.U, e.V, doc.Nodes-1)
		}
		if e.U == e.V {
			return jsonErr(field, "self-loop at node %d", e.U)
		}
		if math.IsNaN(e.Fail) || e.Fail < 0 || e.Fail >= 1 {
			return jsonErr(field+".p_fail", "%v outside [0, 1)", e.Fail)
		}
		key := [2]int32{e.U, e.V}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if seenEdges[key] {
			return jsonErr(field, "duplicate edge (%d,%d)", e.U, e.V)
		}
		seenEdges[key] = true
	}
	seenPairs := make(map[[2]int32]bool, len(doc.Pairs))
	for i, p := range doc.Pairs {
		field := fmt.Sprintf("pairs[%d]", i)
		if p[0] < 0 || p[1] < 0 || int(p[0]) >= doc.Nodes || int(p[1]) >= doc.Nodes {
			return jsonErr(field, "pair (%d,%d) outside 0..%d", p[0], p[1], doc.Nodes-1)
		}
		if p[0] == p[1] {
			return jsonErr(field, "pair of node %d with itself", p[0])
		}
		key := [2]int32{p[0], p[1]}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if seenPairs[key] {
			return jsonErr(field, "duplicate pair (%d,%d)", p[0], p[1])
		}
		seenPairs[key] = true
	}
	if math.IsNaN(doc.FailureThreshold) || doc.FailureThreshold < 0 || doc.FailureThreshold >= 1 {
		return jsonErr("failure_threshold", "%v outside [0, 1)", doc.FailureThreshold)
	}
	if doc.Budget < 0 {
		return jsonErr("budget", "must be non-negative, got %d", doc.Budget)
	}
	return nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// validateEdgeRec rejects one edge-list record: negative, self-looped,
// over-cap ids and NaN or out-of-range failure probabilities, each
// reported with its source line.
func validateEdgeRec(line int, u, v graph.NodeID, p float64, explicitP bool) error {
	if u < 0 || v < 0 {
		return lineErr(line, "edge", "negative node id (%d,%d)", u, v)
	}
	if int(u) >= MaxNodes || int(v) >= MaxNodes {
		return lineErr(line, "edge", "node id (%d,%d) exceeds the %d-node cap", u, v, MaxNodes)
	}
	if u == v {
		return lineErr(line, "edge", "self-loop at node %d", u)
	}
	if explicitP && (math.IsNaN(p) || p < 0 || p >= 1) {
		return lineErr(line, "p_fail", "%v outside [0, 1)", p)
	}
	return nil
}
