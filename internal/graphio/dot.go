package graphio

import (
	"bufio"
	"fmt"
	"io"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
)

// WriteDOT renders the network in Graphviz DOT format for quick visual
// inspection with external tooling. Base links are gray with the failure
// probability as label; shortcut edges are bold red; important-pair
// members are filled. Positions (when present) become pos attributes
// usable by neato -n.
func WriteDOT(w io.Writer, g *graph.Graph, ps *pairs.Set, shortcuts []graph.Edge) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph msc {")
	fmt.Fprintln(bw, "  node [shape=circle, fontsize=9];")

	member := map[graph.NodeID]bool{}
	if ps != nil {
		for _, p := range ps.Pairs() {
			member[p.U] = true
			member[p.W] = true
		}
	}
	coords := g.Coords()
	for v := 0; v < g.N(); v++ {
		attrs := fmt.Sprintf("label=%q", g.Label(graph.NodeID(v)))
		if member[graph.NodeID(v)] {
			attrs += `, style=filled, fillcolor="#2c3e50", fontcolor=white`
		}
		if coords != nil {
			attrs += fmt.Sprintf(", pos=\"%.3f,%.3f!\"", coords[v].X, coords[v].Y)
		}
		fmt.Fprintf(bw, "  %d [%s];\n", v, attrs)
	}
	for _, e := range g.Edges() {
		p := failprob.ProbFromLength(e.Length)
		fmt.Fprintf(bw, "  %d -- %d [color=gray, label=\"%.2f\", fontsize=7];\n", e.U, e.V, p)
	}
	for _, f := range shortcuts {
		fmt.Fprintf(bw, "  %d -- %d [color=\"#c0392b\", penwidth=2.5, style=dashed];\n", f.U, f.V)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
