package graphio

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
)

// WriteJSONStream encodes the same document shape as WriteJSON, but
// straight from the graph through a buffered writer: no Document, no
// []EdgeRecord, no encoder buffer holding the whole output. Peak extra
// heap is one bufio block plus one number-formatting scratch buffer, so
// a 10⁶-node instance streams to disk without a second O(E) copy of the
// edge set (FromGraph + WriteJSON needs ~24 bytes per edge for records
// plus the fully rendered JSON in the encoder's buffer before the first
// byte reaches w).
//
// The output is decode-equal to WriteJSON — ReadJSON yields the same
// Document either way — not byte-equal: numbers use shortest round-trip
// formatting and the layout is one edge per line instead of the
// indented encoder style. Field presence matches the Document
// omitempty rules (coords/labels follow the graph, pairs only when ps
// is non-nil, threshold and budget only when non-zero).
func WriteJSONStream(w io.Writer, g *graph.Graph, ps *pairs.Set, pt float64, k int) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var scratch [32]byte
	buf := scratch[:0]
	writeInt := func(v int64) {
		buf = strconv.AppendInt(buf[:0], v, 10)
		bw.Write(buf)
	}
	var badFloat error
	writeFloat := func(field string, f float64) {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			if badFloat == nil {
				badFloat = jsonErr(field, "non-finite value %v", f)
			}
			f = 0 // keep the stream syntactically valid; the error wins
		}
		buf = strconv.AppendFloat(buf[:0], f, 'g', -1, 64)
		bw.Write(buf)
	}

	bw.WriteString("{\"nodes\":")
	writeInt(int64(g.N()))
	if coords := g.Coords(); coords != nil {
		bw.WriteString(",\n\"coords\":[")
		for i, p := range coords {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString("\n[")
			writeFloat("coords", p.X)
			bw.WriteByte(',')
			writeFloat("coords", p.Y)
			bw.WriteByte(']')
		}
		bw.WriteString("]")
	}
	if labels := g.Labels(); labels != nil {
		bw.WriteString(",\n\"labels\":[")
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteByte('\n')
			quoted, err := json.Marshal(l)
			if err != nil {
				return err // unreachable: strings always marshal
			}
			bw.Write(quoted)
		}
		bw.WriteString("]")
	}
	bw.WriteString(",\n\"edges\":[")
	for i, e := range g.Edges() {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n{\"u\":")
		writeInt(int64(e.U))
		bw.WriteString(",\"v\":")
		writeInt(int64(e.V))
		bw.WriteString(",\"p_fail\":")
		writeFloat("edges.p_fail", failprob.ProbFromLength(e.Length))
		bw.WriteByte('}')
	}
	bw.WriteString("]")
	if ps != nil && ps.Len() > 0 {
		bw.WriteString(",\n\"pairs\":[")
		for i, p := range ps.Pairs() {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString("\n[")
			writeInt(int64(p.U))
			bw.WriteByte(',')
			writeInt(int64(p.W))
			bw.WriteByte(']')
		}
		bw.WriteString("]")
	}
	if pt != 0 {
		bw.WriteString(",\n\"failure_threshold\":")
		writeFloat("failure_threshold", pt)
	}
	if k != 0 {
		bw.WriteString(",\n\"budget\":")
		writeInt(int64(k))
	}
	bw.WriteString("}\n")
	if badFloat != nil {
		return badFloat
	}
	return bw.Flush()
}
