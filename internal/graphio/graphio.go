// Package graphio serializes networks and pair sets so the command-line
// tools can exchange problem instances as files.
//
// Two formats are supported:
//
//   - JSON: a single document carrying nodes (with optional coordinates and
//     labels), edges with failure probabilities, important pairs, and the
//     threshold — the lingua franca of cmd/mscgen, cmd/mscplace and
//     cmd/mscviz.
//   - Edge list: a minimal "u v p_fail" text form for interoperability
//     with other tooling.
package graphio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"msc/internal/failprob"
	"msc/internal/geom"
	"msc/internal/graph"
	"msc/internal/pairs"
)

// Document is the JSON wire form of an MSC problem instance.
type Document struct {
	// Nodes is the node count; node ids are 0..Nodes-1.
	Nodes int `json:"nodes"`
	// Coords holds optional per-node [x, y] positions.
	Coords [][2]float64 `json:"coords,omitempty"`
	// Labels holds optional per-node names.
	Labels []string `json:"labels,omitempty"`
	// Edges holds the links with failure probabilities.
	Edges []EdgeRecord `json:"edges"`
	// Pairs holds the important social pairs (optional).
	Pairs [][2]int32 `json:"pairs,omitempty"`
	// FailureThreshold is p_t (optional; zero means unset).
	FailureThreshold float64 `json:"failure_threshold,omitempty"`
	// Budget is the shortcut budget k (optional).
	Budget int `json:"budget,omitempty"`
}

// EdgeRecord is one link in the JSON form.
type EdgeRecord struct {
	U    int32   `json:"u"`
	V    int32   `json:"v"`
	Fail float64 `json:"p_fail"`
}

// FromGraph converts a graph (and optional pair set) into a Document.
// Edge lengths are converted back to failure probabilities.
func FromGraph(g *graph.Graph, ps *pairs.Set, pt float64, k int) Document {
	doc := Document{
		Nodes:            g.N(),
		Edges:            make([]EdgeRecord, 0, g.M()),
		FailureThreshold: pt,
		Budget:           k,
	}
	if coords := g.Coords(); coords != nil {
		doc.Coords = make([][2]float64, len(coords))
		for i, p := range coords {
			doc.Coords[i] = [2]float64{p.X, p.Y}
		}
	}
	if labels := g.Labels(); labels != nil {
		doc.Labels = append([]string(nil), labels...)
	}
	for _, e := range g.Edges() {
		doc.Edges = append(doc.Edges, EdgeRecord{
			U: e.U, V: e.V, Fail: failprob.ProbFromLength(e.Length),
		})
	}
	if ps != nil {
		doc.Pairs = make([][2]int32, ps.Len())
		for i, p := range ps.Pairs() {
			doc.Pairs[i] = [2]int32{p.U, p.W}
		}
	}
	return doc
}

// Graph reconstructs the network from the document after a full
// Validate pass, so a malformed document surfaces as a *ValidationError
// rather than a builder error deep in construction.
func (doc Document) Graph() (*graph.Graph, error) {
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(doc.Nodes)
	if doc.Coords != nil {
		coords := make([]geom.Point, len(doc.Coords))
		for i, c := range doc.Coords {
			coords[i] = geom.Point{X: c[0], Y: c[1]}
		}
		b.SetCoords(coords)
	}
	if doc.Labels != nil {
		b.SetLabels(doc.Labels)
	}
	for _, e := range doc.Edges {
		b.AddEdge(e.U, e.V, failprob.LengthFromProb(e.Fail))
	}
	return b.Build()
}

// PairSet reconstructs the important pairs, or nil when the document
// carries none.
func (doc Document) PairSet() (*pairs.Set, error) {
	if len(doc.Pairs) == 0 {
		return nil, nil
	}
	ps := make([]pairs.Pair, len(doc.Pairs))
	for i, p := range doc.Pairs {
		ps[i] = pairs.Pair{U: p[0], W: p[1]}
	}
	return pairs.NewSet(doc.Nodes, ps)
}

// WriteJSON encodes the document with indentation.
func WriteJSON(w io.Writer, doc Document) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON decodes and validates a document. Malformed JSON and
// documents violating the structural invariants (see Document.Validate)
// both come back as a *ValidationError wrapping ErrInvalid; ReadJSON
// never panics, whatever the input.
func ReadJSON(r io.Reader) (Document, error) {
	var doc Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return Document{}, &ValidationError{Format: "json", Field: "document", Msg: "decode: " + err.Error()}
	}
	if err := doc.Validate(); err != nil {
		return Document{}, err
	}
	return doc, nil
}

// WriteEdgeList encodes "u v p_fail" lines.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		p := failprob.ProbFromLength(e.Length)
		if _, err := fmt.Fprintf(bw, "%d %d %.10g\n", e.U, e.V, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList decodes "u v p_fail" lines (p_fail optional, default 0).
// The node count is one past the largest id mentioned. Every malformed
// line — wrong field count, unparseable or negative or over-cap ids,
// self-loops, duplicate edges, NaN or out-of-range probabilities — is
// rejected with a *ValidationError naming the line; ReadEdgeList never
// panics, whatever the input.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	type rec struct {
		u, v graph.NodeID
		p    float64
	}
	var recs []rec
	seen := make(map[[2]graph.NodeID]bool)
	maxID := graph.NodeID(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, lineErr(lineNo, "edge", "want 2 or 3 fields, got %d", len(fields))
		}
		u64, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, lineErr(lineNo, "u", "%v", err)
		}
		v64, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, lineErr(lineNo, "v", "%v", err)
		}
		p := 0.0
		if len(fields) == 3 {
			p, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, lineErr(lineNo, "p_fail", "%v", err)
			}
		}
		u, v := graph.NodeID(u64), graph.NodeID(v64)
		if err := validateEdgeRec(lineNo, u, v, p, len(fields) == 3); err != nil {
			return nil, err
		}
		key := [2]graph.NodeID{u, v}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if seen[key] {
			return nil, lineErr(lineNo, "edge", "duplicate edge (%d,%d)", u, v)
		}
		seen[key] = true
		recs = append(recs, rec{u: u, v: v, p: p})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, lineErr(lineNo+1, "line", "%v", err)
		}
		return nil, fmt.Errorf("graphio: read edge list: %w", err)
	}
	if maxID < 0 {
		return nil, &ValidationError{Format: "edgelist", Field: "edges", Msg: "empty edge list"}
	}
	b := graph.NewBuilder(int(maxID) + 1)
	for _, rc := range recs {
		b.AddEdge(rc.u, rc.v, failprob.LengthFromProb(rc.p))
	}
	return b.Build()
}
