package graphio

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"msc/internal/failprob"
	"msc/internal/geom"
	"msc/internal/graph"
	"msc/internal/pairs"
)

func sampleGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.NewBuilder(4).
		SetCoords([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}}).
		SetLabels([]string{"a", "b", "c", "d"}).
		AddEdge(0, 1, failprob.LengthFromProb(0.1)).
		AddEdge(1, 2, failprob.LengthFromProb(0.2)).
		AddEdge(2, 3, failprob.LengthFromProb(0.3)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestJSONRoundTrip(t *testing.T) {
	g := sampleGraph(t)
	ps := pairs.MustNewSet(4, []pairs.Pair{{U: 0, W: 3}, {U: 1, W: 3}})
	doc := FromGraph(g, ps, 0.25, 2)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, doc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nodes != 4 || back.FailureThreshold != 0.25 || back.Budget != 2 {
		t.Fatalf("metadata lost: %+v", back)
	}
	g2, err := back.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("graph shape changed: n=%d m=%d", g2.N(), g2.M())
	}
	for _, e := range g.Edges() {
		l2, ok := g2.EdgeLength(e.U, e.V)
		if !ok || math.Abs(l2-e.Length) > 1e-12 {
			t.Fatalf("edge (%d,%d) length %v -> %v", e.U, e.V, e.Length, l2)
		}
	}
	if g2.Label(0) != "a" {
		t.Fatal("labels lost")
	}
	if g2.Coords()[3] != (geom.Point{X: 1, Y: 1}) {
		t.Fatal("coords lost")
	}
	ps2, err := back.PairSet()
	if err != nil {
		t.Fatal(err)
	}
	if ps2.Len() != 2 {
		t.Fatalf("pairs lost: %d", ps2.Len())
	}
}

func TestPairSetNilWhenAbsent(t *testing.T) {
	doc := FromGraph(sampleGraph(t), nil, 0, 0)
	ps, err := doc.PairSet()
	if err != nil || ps != nil {
		t.Fatalf("PairSet = %v, %v; want nil, nil", ps, err)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"edges":[]}`)); err == nil {
		t.Fatal("expected missing-node-count error")
	}
}

func TestDocumentGraphRejectsBadFailure(t *testing.T) {
	doc := Document{Nodes: 2, Edges: []EdgeRecord{{U: 0, V: 1, Fail: 1.0}}}
	if _, err := doc.Graph(); err == nil {
		t.Fatal("expected error for p_fail = 1")
	}
	doc = Document{Nodes: 2, Coords: [][2]float64{{0, 0}}}
	if _, err := doc.Graph(); err == nil {
		t.Fatal("expected coord-count error")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := sampleGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("m = %d, want %d", g2.M(), g.M())
	}
	for _, e := range g.Edges() {
		l2, ok := g2.EdgeLength(e.U, e.V)
		if !ok || math.Abs(l2-e.Length) > 1e-9 {
			t.Fatalf("edge (%d,%d) mismatch", e.U, e.V)
		}
	}
}

func TestReadEdgeListForms(t *testing.T) {
	in := "# comment\n0 1\n1 2 0.5\n\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if l, _ := g.EdgeLength(0, 1); l != 0 {
		t.Fatalf("default p_fail should be 0, got length %v", l)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",          // empty
		"0\n",       // one field
		"0 1 2 3\n", // four fields
		"x 1\n",     // bad id
		"0 1 1.5\n", // p out of range
	}
	for i, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		doc   Document
		field string
	}{
		{"no nodes", Document{}, "nodes"},
		{"negative nodes", Document{Nodes: -1}, "nodes"},
		{"over cap", Document{Nodes: MaxNodes + 1}, "nodes"},
		{"coord count", Document{Nodes: 2, Coords: [][2]float64{{0, 0}}}, "coords"},
		{"coord NaN", Document{Nodes: 1, Coords: [][2]float64{{math.NaN(), 0}}}, "coords[0]"},
		{"label count", Document{Nodes: 2, Labels: []string{"a"}}, "labels"},
		{"edge range", Document{Nodes: 2, Edges: []EdgeRecord{{U: 0, V: 7}}}, "edges[0]"},
		{"self loop", Document{Nodes: 2, Edges: []EdgeRecord{{U: 1, V: 1}}}, "edges[0]"},
		{"p_fail NaN", Document{Nodes: 2, Edges: []EdgeRecord{{U: 0, V: 1, Fail: math.NaN()}}}, "edges[0].p_fail"},
		{"p_fail one", Document{Nodes: 2, Edges: []EdgeRecord{{U: 0, V: 1, Fail: 1}}}, "edges[0].p_fail"},
		{"dup edge", Document{Nodes: 2, Edges: []EdgeRecord{{U: 0, V: 1, Fail: 0.1}, {U: 1, V: 0, Fail: 0.2}}}, "edges[1]"},
		{"pair range", Document{Nodes: 2, Pairs: [][2]int32{{0, 9}}}, "pairs[0]"},
		{"pair self", Document{Nodes: 2, Pairs: [][2]int32{{1, 1}}}, "pairs[0]"},
		{"dup pair", Document{Nodes: 2, Pairs: [][2]int32{{0, 1}, {1, 0}}}, "pairs[1]"},
		{"threshold NaN", Document{Nodes: 1, FailureThreshold: math.NaN()}, "failure_threshold"},
		{"threshold one", Document{Nodes: 1, FailureThreshold: 1}, "failure_threshold"},
		{"negative budget", Document{Nodes: 1, Budget: -2}, "budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.doc.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.doc)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("error %v does not wrap ErrInvalid", err)
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("error %v is not a *ValidationError", err)
			}
			if verr.Field != tc.field {
				t.Fatalf("Field = %q, want %q (err: %v)", verr.Field, tc.field, err)
			}
		})
	}
}

func TestReadEdgeListTypedErrors(t *testing.T) {
	cases := []struct {
		in   string
		line int
	}{
		{"0 0 0.1\n", 1},                  // self-loop
		{"-3 1 0.1\n", 1},                 // negative id
		{"0 1 NaN\n", 1},                  // NaN slips past < > comparisons
		{"# c\n0 1 0.1\n0 1 0.2\n", 3},    // duplicate edge
		{"0 1 0.1\n0 999999999 0.1\n", 2}, // id over cap
	}
	for i, tc := range cases {
		_, err := ReadEdgeList(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("case %d: accepted %q", i, tc.in)
			continue
		}
		var verr *ValidationError
		if !errors.As(err, &verr) || !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: error %v is not a typed validation error", i, err)
			continue
		}
		if verr.Line != tc.line {
			t.Errorf("case %d: Line = %d, want %d (err: %v)", i, verr.Line, tc.line, err)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := sampleGraph(t)
	ps := pairs.MustNewSet(4, []pairs.Pair{{U: 0, W: 3}})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, ps, []graph.Edge{{U: 1, V: 3}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph msc {", "0 -- 1", "penwidth=2.5", "fillcolor", "pos=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}
