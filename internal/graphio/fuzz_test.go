package graphio

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzReadDocument feeds arbitrary bytes to the JSON reader. The
// contract under hostile input is sharp: either a Document whose
// invariants all hold (it re-validates and builds a graph), or an error
// wrapping ErrInvalid — never a panic, never a silently malformed
// document.
func FuzzReadDocument(f *testing.F) {
	f.Add([]byte(`{"nodes":3,"edges":[{"u":0,"v":1,"p_fail":0.1}],"pairs":[[0,2]],"failure_threshold":0.2,"budget":1}`))
	f.Add([]byte(`{"nodes":0}`))
	f.Add([]byte(`{"nodes":-5,"edges":[]}`))
	f.Add([]byte(`{"nodes":2147483647}`))
	f.Add([]byte(`{"nodes":2,"edges":[{"u":0,"v":0,"p_fail":0}]}`))
	f.Add([]byte(`{"nodes":2,"edges":[{"u":0,"v":1,"p_fail":1.0}]}`))
	f.Add([]byte(`{"nodes":2,"edges":[{"u":0,"v":1,"p_fail":-0.5}]}`))
	f.Add([]byte(`{"nodes":2,"edges":[{"u":0,"v":1,"p_fail":0.1},{"u":1,"v":0,"p_fail":0.2}]}`))
	f.Add([]byte(`{"nodes":2,"edges":[{"u":0,"v":5,"p_fail":0.1}]}`))
	f.Add([]byte(`{"nodes":3,"coords":[[0,0]],"edges":[]}`))
	f.Add([]byte(`{"nodes":2,"labels":["a"],"edges":[]}`))
	f.Add([]byte(`{"nodes":2,"edges":[],"pairs":[[0,0]]}`))
	f.Add([]byte(`{"nodes":2,"edges":[],"pairs":[[0,1],[1,0]]}`))
	f.Add([]byte(`{"nodes":2,"edges":[],"failure_threshold":1.5}`))
	f.Add([]byte(`{"nodes":2,"edges":[],"budget":-3}`))
	f.Add([]byte(`{"nodes":2,"coords":[[1e999,0],[0,0]],"edges":[]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("ReadJSON error %v does not wrap ErrInvalid", err)
			}
			return
		}
		// An accepted document must satisfy its own invariants and build.
		if verr := doc.Validate(); verr != nil {
			t.Fatalf("accepted document fails Validate: %v", verr)
		}
		if _, gerr := doc.Graph(); gerr != nil {
			t.Fatalf("validated document fails Graph: %v", gerr)
		}
		if _, perr := doc.PairSet(); perr != nil {
			t.Fatalf("validated document fails PairSet: %v", perr)
		}
	})
}

// FuzzReadCostTable feeds arbitrary bytes to the cost-table reader: a
// table whose invariants all hold (it re-validates and prices lookups with
// positive values), or an error wrapping ErrInvalid — never a panic.
func FuzzReadCostTable(f *testing.F) {
	f.Add([]byte(`{"default":2.5,"costs":[{"u":0,"v":1,"cost":1.5},{"u":2,"v":3,"cost":0.25}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"default":0}`))
	f.Add([]byte(`{"default":-1}`))
	f.Add([]byte(`{"costs":[{"u":0,"v":0,"cost":1}]}`))
	f.Add([]byte(`{"costs":[{"u":-1,"v":2,"cost":1}]}`))
	f.Add([]byte(`{"costs":[{"u":0,"v":1,"cost":0}]}`))
	f.Add([]byte(`{"costs":[{"u":0,"v":1,"cost":-3}]}`))
	f.Add([]byte(`{"costs":[{"u":0,"v":1,"cost":1},{"u":1,"v":0,"cost":2}]}`))
	f.Add([]byte(`{"costs":[{"u":0,"v":999999999,"cost":1}]}`))
	f.Add([]byte(`{"default":1e308,"costs":[]}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := ReadCostTable(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("ReadCostTable error %v does not wrap ErrInvalid", err)
			}
			return
		}
		if verr := ct.Validate(); verr != nil {
			t.Fatalf("accepted cost table fails Validate: %v", verr)
		}
		// Every lookup must price positive: listed pairs by their record,
		// unlisted pairs by the default (or unit).
		for _, rec := range ct.Costs {
			if c := ct.Cost(rec.U, rec.V); c != rec.Cost {
				t.Fatalf("Cost(%d,%d) = %v, want listed %v", rec.U, rec.V, c, rec.Cost)
			}
			if c := ct.Cost(rec.V, rec.U); c != rec.Cost {
				t.Fatalf("Cost(%d,%d) = %v, want listed %v (order-independent)", rec.V, rec.U, c, rec.Cost)
			}
		}
		if c := ct.Cost(0, 1<<30); c <= 0 {
			t.Fatalf("unlisted pair priced %v, want positive", c)
		}
	})
}

// FuzzReadEdgeList feeds arbitrary text to the edge-list reader: a valid
// graph or an ErrInvalid-wrapping error, never a panic.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1 0.5\n1 2 0.25\n")
	f.Add("0 1\n")
	f.Add("# comment\n\n0 1 0.1\n")
	f.Add("0 0 0.1\n")
	f.Add("-1 2 0.1\n")
	f.Add("0 1 NaN\n")
	f.Add("0 1 +Inf\n")
	f.Add("0 1 1.0\n")
	f.Add("0 1 -0.0001\n")
	f.Add("0 999999999 0.1\n")
	f.Add("0 1 0.1\n1 0 0.2\n")
	f.Add("0 1 0.1 extra\n")
	f.Add("x y z\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadEdgeList(strings.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("ReadEdgeList error %v does not wrap ErrInvalid", err)
			}
			return
		}
		if g.N() <= 0 || g.N() > MaxNodes {
			t.Fatalf("accepted graph has n = %d", g.N())
		}
	})
}
