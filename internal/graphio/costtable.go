package graphio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// CostRecord prices one candidate shortcut by its endpoints.
type CostRecord struct {
	U    int32   `json:"u"`
	V    int32   `json:"v"`
	Cost float64 `json:"cost"`
}

// CostTable is the JSON wire form of a per-candidate shortcut price table
// (the "table" cost model of budget-weighted placement). Endpoint pairs not
// listed in Costs price at Default; a Default of 0 means the built-in unit
// price 1.
type CostTable struct {
	// Default is the price of every pair the table does not list
	// (0 means 1).
	Default float64 `json:"default,omitempty"`
	// Costs lists the explicitly priced pairs.
	Costs []CostRecord `json:"costs,omitempty"`
	// index maps canonical (min, max) endpoint pairs to prices; built by
	// Validate/ReadCostTable.
	index map[[2]int32]float64
}

// Cost returns the price of the shortcut (u, v): the listed price when the
// pair appears in the table (either endpoint order), else Default, else 1.
func (ct *CostTable) Cost(u, v int32) float64 {
	key := [2]int32{u, v}
	if key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	if c, ok := ct.index[key]; ok {
		return c
	}
	if ct.Default > 0 {
		return ct.Default
	}
	return 1
}

// Validate checks the table's invariants — the price contract of
// core.Options.Costs: Default finite and non-negative (0 delegates to the
// unit price), every record a non-self-loop pair with a positive non-NaN
// price (+Inf is legal: it marks an unaffordable pair), and no pair listed
// twice in either endpoint order. It also builds the lookup index used by
// Cost. ReadCostTable calls it on every decoded table.
func (ct *CostTable) Validate() error {
	if math.IsNaN(ct.Default) || math.IsInf(ct.Default, 0) || ct.Default < 0 {
		return &ValidationError{Format: "cost-table", Field: "default",
			Msg: fmt.Sprintf("%v must be finite and non-negative", ct.Default)}
	}
	index := make(map[[2]int32]float64, len(ct.Costs))
	for i, rec := range ct.Costs {
		field := fmt.Sprintf("costs[%d]", i)
		if rec.U < 0 || rec.V < 0 {
			return &ValidationError{Format: "cost-table", Field: field,
				Msg: fmt.Sprintf("negative node id (%d,%d)", rec.U, rec.V)}
		}
		if int(rec.U) >= MaxNodes || int(rec.V) >= MaxNodes {
			return &ValidationError{Format: "cost-table", Field: field,
				Msg: fmt.Sprintf("node id (%d,%d) exceeds the %d-node cap", rec.U, rec.V, MaxNodes)}
		}
		if rec.U == rec.V {
			return &ValidationError{Format: "cost-table", Field: field,
				Msg: fmt.Sprintf("self-loop at node %d", rec.U)}
		}
		if math.IsNaN(rec.Cost) || rec.Cost <= 0 {
			return &ValidationError{Format: "cost-table", Field: field + ".cost",
				Msg: fmt.Sprintf("%v must be positive (+Inf marks unaffordable)", rec.Cost)}
		}
		key := [2]int32{rec.U, rec.V}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if _, dup := index[key]; dup {
			return &ValidationError{Format: "cost-table", Field: field,
				Msg: fmt.Sprintf("duplicate pair (%d,%d)", rec.U, rec.V)}
		}
		index[key] = rec.Cost
	}
	ct.index = index
	return nil
}

// WriteCostTable encodes the table with indentation.
func WriteCostTable(w io.Writer, ct CostTable) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ct)
}

// ReadCostTable decodes and validates a shortcut price table. Malformed
// JSON, unknown fields, and tables violating the price invariants all come
// back as a *ValidationError wrapping ErrInvalid; ReadCostTable never
// panics, whatever the input.
func ReadCostTable(r io.Reader) (CostTable, error) {
	var ct CostTable
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ct); err != nil {
		return CostTable{}, &ValidationError{Format: "cost-table", Field: "document", Msg: "decode: " + err.Error()}
	}
	if err := ct.Validate(); err != nil {
		return CostTable{}, err
	}
	return ct, nil
}
