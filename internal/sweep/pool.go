package sweep

import (
	"context"
	"fmt"
	"sync"

	"msc/internal/telemetry"
)

// Runner executes one scenario and returns its solver run record.
// ProcessRunner is the production implementation (worker processes);
// tests substitute fakes to exercise the pool and the aggregation layers
// without spawning anything.
type Runner interface {
	Run(ctx context.Context, sc Scenario) (telemetry.RunRecord, error)
}

// Result pairs a scenario with the outcome of its run. Exactly one of
// Record/Err is meaningful: a failed run keeps the zero record.
type Result struct {
	Scenario Scenario
	Record   telemetry.RunRecord
	Err      error
	// Metrics holds the run's harvested ops metrics (flat Prometheus
	// sample name → value), when the Runner implements MetricsHarvester
	// and harvesting is on; nil otherwise.
	Metrics map[string]float64
	// Retries counts how many transient-failure retries this run consumed
	// (0 when it succeeded first try), when the Runner implements
	// RetryReporter (see Retrier).
	Retries int
}

// RetryReporter is the optional Runner extension for retry accounting:
// after each Run — failed or not, since a run can burn retries before its
// final failure — RunAll calls TakeRetries with the same scenario and
// records the count in the Result. Take semantics keep the reporter's
// buffer bounded.
type RetryReporter interface {
	TakeRetries(sc Scenario) int
}

// MetricsHarvester is the optional Runner extension for ops-metric
// harvesting: after a successful Run, RunAll calls TakeMetrics with the
// same scenario and attaches whatever it returns (nil when the run
// produced no metrics) to the Result. Take semantics — a second call for
// the same scenario returns nil — keep the runner's buffer bounded.
type MetricsHarvester interface {
	TakeMetrics(sc Scenario) map[string]float64
}

// RunAll fans scenarios across a bounded pool of workers goroutines, each
// of which drives one child process at a time through the Runner. Results
// come back indexed by scenario position, so the output order is the
// deterministic Expand order regardless of completion interleaving.
//
// Cancellation of ctx stops the fan-out: queued scenarios fail fast with
// ctx's error, while in-flight runs are left to the Runner's own
// supervision (ProcessRunner forwards SIGINT and collects best-so-far
// records, PR 3 style). RunAll itself never fails — per-run errors travel
// in the Results, and the caller decides how many failures a sweep
// tolerates.
//
// progress, when non-nil, is invoked once per completed run from worker
// goroutines (it must be safe for concurrent use — the CLI serializes
// through a mutex).
func RunAll(ctx context.Context, r Runner, scenarios []Scenario, workers int, progress func(Result)) []Result {
	if workers <= 0 {
		workers = 1
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]Result, len(scenarios))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				sc := scenarios[i]
				res := Result{Scenario: sc}
				if err := ctx.Err(); err != nil {
					res.Err = fmt.Errorf("sweep: run %s seed %d not started: %w", sc.Key(), sc.Seed, err)
				} else {
					res.Record, res.Err = r.Run(ctx, sc)
					if h, ok := r.(MetricsHarvester); ok && res.Err == nil {
						res.Metrics = h.TakeMetrics(sc)
					}
					if rr, ok := r.(RetryReporter); ok {
						res.Retries = rr.TakeRetries(sc)
					}
				}
				results[i] = res
				if progress != nil {
					progress(res)
				}
			}
		}()
	}
	for i := range scenarios {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}
