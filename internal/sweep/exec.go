package sweep

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"msc/internal/obs"
	"msc/internal/telemetry"
)

// RunError is the typed failure of one scenario run: which scenario, at
// which stage (generate | exec | ingest), with the tail of the child's
// output for post-mortems.
type RunError struct {
	Scenario Scenario
	Stage    string
	Output   string
	Err      error
}

func (e *RunError) Error() string {
	msg := fmt.Sprintf("sweep: %s seed %d: %s: %v", e.Scenario.Key(), e.Scenario.Seed, e.Stage, e.Err)
	if e.Output != "" {
		msg += "\n" + e.Output
	}
	return msg
}

func (e *RunError) Unwrap() error { return e.Err }

// ProcessRunner executes scenarios as worker processes: mscgen to
// materialize each unique problem instance (cached per InstanceKey, so
// scenarios differing only in solver/backend/eval/par share one file),
// then mscplace or mscbench with -jsonl. Every ingested stream is
// schema-validated via telemetry.ReadRunRecords before a record is
// accepted.
//
// Children inherit PR 3's supervision: place runs get -deadline so the
// solver itself stops gracefully and still emits its best-so-far record;
// on context cancellation the child receives SIGINT (the graceful-stop
// signal all msc commands handle) and is hard-killed only after
// KillDelay.
type ProcessRunner struct {
	// Mscgen, Mscplace, Mscbench are the binary paths. Mscbench may be
	// empty when the matrix names no experiments.
	Mscgen   string
	Mscplace string
	Mscbench string
	// WorkDir receives instance files and per-run JSONL records (named by
	// scenario key and seed, so a failed sweep leaves an inspectable
	// trail). Required.
	WorkDir string
	// Deadline bounds one run's wall clock. Place children receive it as
	// -deadline (graceful, best-so-far record still emitted); bench
	// children get SIGINT at the deadline and KillDelay of grace to flush.
	// Zero means unbounded.
	Deadline time.Duration
	// Iters is the -iters budget for ea/aea/random solvers (0 = mscplace
	// default).
	Iters int
	// KillDelay is the grace between SIGINT and SIGKILL for a child that
	// ignores the graceful stop (default 10s).
	KillDelay time.Duration
	// Ops, when true, runs every place/bench child with its ops plane up
	// (-ops 127.0.0.1:0, so children never fight over a port) and a
	// deterministic -metrics-dump file the runner harvests after the child
	// exits — no scrape race against process teardown. Harvested samples
	// surface through TakeMetrics (see MetricsHarvester); the raw
	// exposition files stay in WorkDir beside the JSONL records.
	Ops bool

	mu        sync.Mutex
	instances map[string]*instanceEntry
	metrics   map[string]map[string]float64
}

type instanceEntry struct {
	once sync.Once
	path string
	err  error
}

// Run implements Runner.
func (p *ProcessRunner) Run(ctx context.Context, sc Scenario) (telemetry.RunRecord, error) {
	switch sc.Kind {
	case KindPlace:
		return p.runPlace(ctx, sc)
	case KindBench:
		return p.runBench(ctx, sc)
	default:
		return telemetry.RunRecord{}, &RunError{Scenario: sc, Stage: "exec", Err: fmt.Errorf("unknown scenario kind %q", sc.Kind)}
	}
}

// instance returns the cached instance file for sc, generating it on
// first use. Generation is serialized per key via sync.Once so concurrent
// workers never race on one file.
func (p *ProcessRunner) instance(ctx context.Context, sc Scenario) (string, error) {
	p.mu.Lock()
	if p.instances == nil {
		p.instances = make(map[string]*instanceEntry)
	}
	ent, ok := p.instances[sc.InstanceKey()]
	if !ok {
		ent = &instanceEntry{}
		p.instances[sc.InstanceKey()] = ent
	}
	p.mu.Unlock()

	ent.once.Do(func() {
		path := filepath.Join(p.WorkDir, "inst-"+sc.InstanceKey()+".json")
		args := []string{
			"-kind", sc.Family,
			"-m", strconv.Itoa(sc.M),
			"-pt", formatPt(sc.Pt),
			"-k", strconv.Itoa(sc.K),
			"-seed", strconv.FormatInt(sc.Seed, 10),
			"-out", path,
		}
		if sc.Family != "social" {
			args = append(args, "-n", strconv.Itoa(sc.N))
		}
		if _, err := p.exec(ctx, p.Mscgen, args, 0); err != nil {
			ent.err = err
			return
		}
		ent.path = path
	})
	if ent.err != nil {
		return "", &RunError{Scenario: sc, Stage: "generate", Err: ent.err}
	}
	return ent.path, nil
}

func (p *ProcessRunner) runPlace(ctx context.Context, sc Scenario) (telemetry.RunRecord, error) {
	inst, err := p.instance(ctx, sc)
	if err != nil {
		return telemetry.RunRecord{}, err
	}
	jsonl := p.recordPath(sc)
	args := []string{
		"-in", inst,
		"-alg", sc.Solver,
		"-seed", strconv.FormatInt(sc.Seed, 10),
		"-par", strconv.Itoa(sc.Par),
		"-dist-backend", sc.DistBackend,
		"-eval", sc.EvalMode,
		"-jsonl", jsonl,
	}
	if sc.Survive != "" {
		args = append(args, "-survive", sc.Survive)
	}
	if sc.Budget > 0 {
		args = append(args, "-budget", strconv.FormatFloat(sc.Budget, 'g', -1, 64))
	}
	args = p.opsArgs(args, sc)
	if p.Iters > 0 {
		args = append(args, "-iters", strconv.Itoa(p.Iters))
	}
	if p.Deadline > 0 {
		args = append(args, "-deadline", p.Deadline.String())
	}
	out, err := p.exec(ctx, p.Mscplace, args, p.execTimeout())
	if err != nil {
		return telemetry.RunRecord{}, &RunError{Scenario: sc, Stage: "exec", Output: tail(out), Err: err}
	}
	rec, err := p.ingest(jsonl, func(r telemetry.RunRecord) bool { return r.Name == sc.Solver })
	if err != nil {
		return telemetry.RunRecord{}, &RunError{Scenario: sc, Stage: "ingest", Err: err}
	}
	if err := p.harvestMetrics(sc); err != nil {
		return telemetry.RunRecord{}, &RunError{Scenario: sc, Stage: "harvest", Err: err}
	}
	return rec, nil
}

func (p *ProcessRunner) runBench(ctx context.Context, sc Scenario) (telemetry.RunRecord, error) {
	if p.Mscbench == "" {
		return telemetry.RunRecord{}, &RunError{Scenario: sc, Stage: "exec", Err: fmt.Errorf("matrix names experiments but no mscbench binary is configured")}
	}
	jsonl := p.recordPath(sc)
	args := []string{
		"-exp", sc.Experiment,
		"-seed", strconv.FormatInt(sc.Seed, 10),
		"-par", strconv.Itoa(sc.Par),
		"-dist-backend", sc.DistBackend,
		"-eval", sc.EvalMode,
		"-jsonl", jsonl,
	}
	if sc.Quick {
		args = append(args, "-quick")
	}
	args = p.opsArgs(args, sc)
	out, err := p.exec(ctx, p.Mscbench, args, p.execTimeout())
	if err != nil {
		return telemetry.RunRecord{}, &RunError{Scenario: sc, Stage: "exec", Output: tail(out), Err: err}
	}
	rec, err := p.ingest(jsonl, func(r telemetry.RunRecord) bool {
		return r.Algorithm == "experiment" && r.Name == sc.Experiment
	})
	if err != nil {
		return telemetry.RunRecord{}, &RunError{Scenario: sc, Stage: "ingest", Err: err}
	}
	if err := p.harvestMetrics(sc); err != nil {
		return telemetry.RunRecord{}, &RunError{Scenario: sc, Stage: "harvest", Err: err}
	}
	return rec, nil
}

// recordPath names the per-run JSONL file after the scenario, so a sweep
// directory reads as a manifest of what ran.
func (p *ProcessRunner) recordPath(sc Scenario) string {
	key := strings.NewReplacer("/", "_", ".", "_").Replace(sc.Key())
	return filepath.Join(p.WorkDir, fmt.Sprintf("run-%s-seed%d.jsonl", key, sc.Seed))
}

// metricsPath names the per-run ops-metrics dump beside the JSONL record.
func (p *ProcessRunner) metricsPath(sc Scenario) string {
	key := strings.NewReplacer("/", "_", ".", "_").Replace(sc.Key())
	return filepath.Join(p.WorkDir, fmt.Sprintf("metrics-%s-seed%d.prom", key, sc.Seed))
}

// opsArgs appends the child's ops-plane flags when harvesting is on.
func (p *ProcessRunner) opsArgs(args []string, sc Scenario) []string {
	if !p.Ops {
		return args
	}
	return append(args,
		"-ops", "127.0.0.1:0",
		"-metrics-dump", p.metricsPath(sc),
	)
}

// harvestMetrics parses a finished child's -metrics-dump exposition into
// the runner's buffer, keyed for TakeMetrics. No-op when Ops is off.
func (p *ProcessRunner) harvestMetrics(sc Scenario) error {
	if !p.Ops {
		return nil
	}
	path := p.metricsPath(sc)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ops metrics dump: %w", err)
	}
	defer f.Close()
	samples, err := obs.ParsePrometheus(f)
	if err != nil {
		return fmt.Errorf("ops metrics dump %s: %w", path, err)
	}
	p.mu.Lock()
	if p.metrics == nil {
		p.metrics = make(map[string]map[string]float64)
	}
	p.metrics[p.metricsKey(sc)] = samples
	p.mu.Unlock()
	return nil
}

func (p *ProcessRunner) metricsKey(sc Scenario) string {
	return fmt.Sprintf("%s|%d", sc.Key(), sc.Seed)
}

// TakeMetrics implements MetricsHarvester: it removes and returns the
// harvested samples for sc, or nil when the scenario has none (harvesting
// off, run failed, or already taken).
func (p *ProcessRunner) TakeMetrics(sc Scenario) map[string]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := p.metricsKey(sc)
	samples := p.metrics[key]
	delete(p.metrics, key)
	return samples
}

// ingest validates the whole JSONL stream and returns the single run
// record matching pick. Zero or multiple matches are ingest errors: the
// aggregator must never guess which record a scenario produced.
func (p *ProcessRunner) ingest(path string, pick func(telemetry.RunRecord) bool) (telemetry.RunRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return telemetry.RunRecord{}, err
	}
	defer f.Close()
	recs, err := telemetry.ReadRunRecords(f)
	if err != nil {
		return telemetry.RunRecord{}, fmt.Errorf("%s: %w", path, err)
	}
	var picked []telemetry.RunRecord
	for _, r := range recs {
		if pick(r) {
			picked = append(picked, r)
		}
	}
	if len(picked) != 1 {
		return telemetry.RunRecord{}, fmt.Errorf("%s: %d matching run records, want exactly 1 (of %d total)", path, len(picked), len(recs))
	}
	return picked[0], nil
}

func (p *ProcessRunner) execTimeout() time.Duration {
	if p.Deadline <= 0 {
		return 0
	}
	// The child enforces the fine-grained deadline itself; the hard
	// timeout only catches a wedged process, so it gets generous slack
	// for instance construction and record flushing.
	return p.Deadline + 30*time.Second
}

// exec runs one child to completion, returning its combined output. On
// context cancellation (or the hard timeout) the child receives SIGINT —
// every msc command treats that as a graceful stop — and is killed after
// KillDelay if it lingers.
func (p *ProcessRunner) exec(ctx context.Context, bin string, args []string, timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	cmd := exec.CommandContext(ctx, bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGINT) }
	cmd.WaitDelay = p.KillDelay
	if cmd.WaitDelay <= 0 {
		cmd.WaitDelay = 10 * time.Second
	}
	err := cmd.Run()
	if err != nil && ctx.Err() != nil {
		err = fmt.Errorf("%v (%w)", err, ctx.Err())
	}
	return out.Bytes(), err
}

// tail returns the last few lines of child output for error reports.
func tail(out []byte) string {
	const maxLines = 12
	s := strings.TrimSpace(string(out))
	if s == "" {
		return ""
	}
	lines := strings.Split(s, "\n")
	if len(lines) > maxLines {
		lines = lines[len(lines)-maxLines:]
	}
	return "  | " + strings.Join(lines, "\n  | ")
}
