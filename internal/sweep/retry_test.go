package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os/exec"
	"testing"
	"time"

	"msc/internal/telemetry"
)

// exitErrFromShell runs a shell snippet and returns the resulting
// *exec.ExitError, so classification tests exercise real process
// failure shapes instead of hand-built ones.
func exitErrFromShell(t *testing.T, script string) error {
	t.Helper()
	err := exec.Command("/bin/sh", "-c", script).Run()
	var xe *exec.ExitError
	if !errors.As(err, &xe) {
		t.Fatalf("shell %q: got %v, want *exec.ExitError", script, err)
	}
	return err
}

func TestTransientClassification(t *testing.T) {
	sc := Scenario{Kind: KindPlace, Family: "rgg", N: 10, M: 3, Pt: 0.1, K: 2, Solver: "greedy", Seed: 1}
	killed := exitErrFromShell(t, "kill -KILL $$")
	exited := exitErrFromShell(t, "exit 3")
	startFail := exec.Command("/definitely/not/a/binary").Run()
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"bare error", errors.New("boom"), false},
		{"exec signal-killed", &RunError{Scenario: sc, Stage: "exec", Err: killed}, true},
		{"exec nonzero solver exit", &RunError{Scenario: sc, Stage: "exec", Err: exited}, false},
		{"exec start failure", &RunError{Scenario: sc, Stage: "exec", Err: startFail}, true},
		{"exec canceled", &RunError{Scenario: sc, Stage: "exec",
			Err: fmt.Errorf("%v (%w)", killed, context.Canceled)}, false},
		{"ingest missing file", &RunError{Scenario: sc, Stage: "ingest",
			Err: &fs.PathError{Op: "open", Path: "x.jsonl", Err: fs.ErrNotExist}}, true},
		{"ingest truncation", &RunError{Scenario: sc, Stage: "ingest",
			Err: fmt.Errorf("x.jsonl: %w", io.ErrUnexpectedEOF)}, true},
		{"ingest schema violation", &RunError{Scenario: sc, Stage: "ingest",
			Err: errors.New("line 3: run event missing required field \"sigma\"")}, false},
		{"generate cached failure", &RunError{Scenario: sc, Stage: "generate", Err: killed}, false},
		{"harvest", &RunError{Scenario: sc, Stage: "harvest", Err: fs.ErrNotExist}, false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("%s: Transient = %v, want %v", c.name, got, c.want)
		}
	}
}

// flakyRunner fails each scenario with err until its per-scenario failure
// budget runs out, then succeeds.
type flakyRunner struct {
	failures int
	err      func(sc Scenario) error
	calls    map[string]int
}

func (f *flakyRunner) Run(_ context.Context, sc Scenario) (telemetry.RunRecord, error) {
	if f.calls == nil {
		f.calls = make(map[string]int)
	}
	f.calls[retryKey(sc)]++
	if f.calls[retryKey(sc)] <= f.failures {
		return telemetry.RunRecord{}, f.err(sc)
	}
	return telemetry.RunRecord{Name: sc.Solver, Sigma: 7, SigmaWorst: -1}, nil
}

func TestRetrierRecoversTransientFailures(t *testing.T) {
	killed := exitErrFromShell(t, "kill -KILL $$")
	flaky := &flakyRunner{failures: 2, err: func(sc Scenario) error {
		return &RunError{Scenario: sc, Stage: "exec", Err: killed}
	}}
	var slept []time.Duration
	r := &Retrier{Runner: flaky, Max: 2, BaseDelay: 10 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	sc := Scenario{Kind: KindPlace, Family: "rgg", N: 10, M: 3, Pt: 0.1, K: 2, Solver: "greedy", Seed: 1}

	results := RunAll(context.Background(), r, []Scenario{sc}, 1, nil)
	if err := results[0].Err; err != nil {
		t.Fatalf("run failed through retrier: %v", err)
	}
	if results[0].Record.Sigma != 7 {
		t.Fatalf("record not from the successful attempt: %+v", results[0].Record)
	}
	if results[0].Retries != 2 {
		t.Fatalf("Result.Retries = %d, want 2", results[0].Retries)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Exponential with bounded deterministic jitter: attempt i in
	// [base·2^i, 1.5·base·2^i].
	for i, d := range slept {
		lo := 10 * time.Millisecond << uint(i)
		if d < lo || d > lo+lo/2 {
			t.Fatalf("backoff %d = %v outside [%v, %v]", i, d, lo, lo+lo/2)
		}
	}
	if n := r.TakeRetries(sc); n != 0 {
		t.Fatalf("retries not take-consumed: second take = %d", n)
	}
}

func TestRetrierExhaustsBudget(t *testing.T) {
	killed := exitErrFromShell(t, "kill -KILL $$")
	flaky := &flakyRunner{failures: 10, err: func(sc Scenario) error {
		return &RunError{Scenario: sc, Stage: "exec", Err: killed}
	}}
	r := &Retrier{Runner: flaky, Max: 2, Sleep: func(time.Duration) {}}
	sc := Scenario{Kind: KindPlace, Family: "rgg", N: 10, M: 3, Pt: 0.1, K: 2, Solver: "greedy", Seed: 1}
	results := RunAll(context.Background(), r, []Scenario{sc}, 1, nil)
	if results[0].Err == nil {
		t.Fatal("want failure after budget exhausted")
	}
	if got := flaky.calls[retryKey(sc)]; got != 3 {
		t.Fatalf("runner called %d times, want 3 (1 + Max retries)", got)
	}
	if results[0].Retries != 2 {
		t.Fatalf("Result.Retries = %d on final failure, want 2", results[0].Retries)
	}
}

func TestRetrierPassesSolverErrorsThrough(t *testing.T) {
	exited := exitErrFromShell(t, "exit 3")
	flaky := &flakyRunner{failures: 10, err: func(sc Scenario) error {
		return &RunError{Scenario: sc, Stage: "exec", Err: exited}
	}}
	r := &Retrier{Runner: flaky, Max: 5, Sleep: func(d time.Duration) {
		t.Fatalf("slept %v for a non-transient error", d)
	}}
	sc := Scenario{Kind: KindPlace, Family: "rgg", N: 10, M: 3, Pt: 0.1, K: 2, Solver: "greedy", Seed: 1}
	results := RunAll(context.Background(), r, []Scenario{sc}, 1, nil)
	if results[0].Err == nil {
		t.Fatal("want solver error through untouched")
	}
	if got := flaky.calls[retryKey(sc)]; got != 1 {
		t.Fatalf("runner called %d times for a deterministic failure, want 1", got)
	}
	if results[0].Retries != 0 {
		t.Fatalf("Result.Retries = %d, want 0", results[0].Retries)
	}
}
