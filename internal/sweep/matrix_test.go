package sweep

import (
	"strings"
	"testing"
)

func TestQuickMatrixExpands(t *testing.T) {
	scs, err := QuickMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2 k × 2 solvers × 2 backends × 2 survive × 2 budgets × 3 seeds place
	// runs + 1 experiment × 2 backends × 3 seeds.
	if len(scs) != 102 {
		t.Fatalf("quick matrix expands to %d runs, want 102", len(scs))
	}
	keys := make(map[string]int)
	for _, sc := range scs {
		keys[sc.Key()]++
	}
	if len(keys) != 34 {
		t.Fatalf("quick matrix has %d scenario keys, want 34: %v", len(keys), keys)
	}
	for key, n := range keys {
		if n != 3 {
			t.Errorf("key %s has %d runs, want 3 (one per seed)", key, n)
		}
	}
	// The fault-free half keeps the historical key shape; the survivable
	// half gets its own segment.
	if _, ok := keys["place/rgg/n40/m8/pt0.12/k2/greedy/auto/auto/par1"]; !ok {
		t.Errorf("expected canonical place key missing: %v", keys)
	}
	if _, ok := keys["place/rgg/n40/m8/pt0.12/k2/greedy/auto/auto/par1/sv-shortcut"]; !ok {
		t.Errorf("expected survivable place key missing: %v", keys)
	}
	if _, ok := keys["place/rgg/n40/m8/pt0.12/k2/greedy/auto/auto/par1/b-2"]; !ok {
		t.Errorf("expected budgeted place key missing: %v", keys)
	}
	if _, ok := keys["place/rgg/n40/m8/pt0.12/k2/greedy/auto/auto/par1/sv-shortcut/b-2"]; !ok {
		t.Errorf("expected survivable budgeted place key missing: %v", keys)
	}
	if _, ok := keys["bench/table1/quick/auto/auto/par1"]; !ok {
		t.Errorf("expected canonical bench key missing: %v", keys)
	}
	// The forced-bounded half gets its own key segment, so bounded and
	// auto trajectories gate independently.
	if _, ok := keys["place/rgg/n40/m8/pt0.12/k2/greedy/bounded/auto/par1"]; !ok {
		t.Errorf("expected bounded place key missing: %v", keys)
	}
	if _, ok := keys["bench/table1/quick/bounded/auto/par1"]; !ok {
		t.Errorf("expected bounded bench key missing: %v", keys)
	}
}

func TestExpandDeterministicOrder(t *testing.T) {
	m := QuickMatrix()
	a, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("expansion order not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScenarioKeyExcludesSeed(t *testing.T) {
	m := QuickMatrix()
	scs, _ := m.Expand()
	if scs[0].Seed == scs[1].Seed {
		t.Fatal("first two scenarios should differ in seed (seed is the innermost axis)")
	}
	if scs[0].Key() != scs[1].Key() {
		t.Fatalf("seed leaked into the key: %s vs %s", scs[0].Key(), scs[1].Key())
	}
}

func TestInstanceKeySharedAcrossSolvers(t *testing.T) {
	a := Scenario{Kind: KindPlace, Family: "rgg", N: 40, M: 8, Pt: 0.12, K: 2, Solver: "greedy", Seed: 1}
	b := a
	b.Solver = "sandwich"
	b.DistBackend = "lazy"
	b.Par = 8
	if a.InstanceKey() != b.InstanceKey() {
		t.Fatalf("solver/backend/par must not split the instance cache: %s vs %s", a.InstanceKey(), b.InstanceKey())
	}
	c := a
	c.Seed = 2
	if a.InstanceKey() == c.InstanceKey() {
		t.Fatal("different seeds must generate different instances")
	}
}

func TestMatrixValidation(t *testing.T) {
	base := QuickMatrix()
	cases := []struct {
		name   string
		mutate func(*Matrix)
		axis   string // expected MatrixError.Axis; "" = valid
	}{
		{"quick matrix valid", func(m *Matrix) {}, ""},
		{"bench-only valid", func(m *Matrix) {
			m.Solvers = nil
			m.Families = nil
			m.N = nil
			m.M = nil
			m.Pt = nil
			m.K = nil
		}, ""},
		{"empty sweep", func(m *Matrix) { m.Solvers = nil; m.Experiments = nil }, "solvers"},
		{"no seeds", func(m *Matrix) { m.Seeds = nil }, "seeds"},
		{"repeated seed", func(m *Matrix) { m.Seeds = []int64{1, 2, 1} }, "seeds"},
		{"unknown family", func(m *Matrix) { m.Families = []string{"torus"} }, "families"},
		{"unknown solver", func(m *Matrix) { m.Solvers = []string{"magic"} }, "solvers"},
		{"unknown backend", func(m *Matrix) { m.DistBackends = []string{"quantum"} }, "dist_backends"},
		{"unknown eval", func(m *Matrix) { m.EvalModes = []string{"psychic"} }, "eval_modes"},
		{"negative par", func(m *Matrix) { m.Parallelism = []int{-1} }, "parallelism"},
		{"zero n", func(m *Matrix) { m.N = []int{0} }, "n"},
		{"negative k", func(m *Matrix) { m.K = []int{-2} }, "k"},
		{"empty m axis", func(m *Matrix) { m.M = nil }, "m"},
		{"threshold out of range", func(m *Matrix) { m.Pt = []float64{1.5} }, "p_t"},
		{"empty experiment id", func(m *Matrix) { m.Experiments = []string{" "} }, "experiments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base
			tc.mutate(&m)
			err := m.Validate()
			if tc.axis == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			me, ok := err.(*MatrixError)
			if !ok {
				t.Fatalf("got %v (%T), want *MatrixError", err, err)
			}
			if me.Axis != tc.axis {
				t.Fatalf("flagged axis %q, want %q (%v)", me.Axis, tc.axis, err)
			}
		})
	}
}

func TestReadMatrixRejectsUnknownField(t *testing.T) {
	// "solver" (singular) is the typo this guard exists for: without
	// DisallowUnknownFields it would silently produce an empty sweep.
	_, err := ReadMatrix(strings.NewReader(`{"solver": ["greedy"], "seeds": [1]}`))
	if err == nil || !strings.Contains(err.Error(), "solver") {
		t.Fatalf("typo'd axis not rejected: %v", err)
	}
	m, err := ReadMatrix(strings.NewReader(`{
		"families": ["rgg"], "n": [40], "m": [8], "p_t": [0.12], "k": [2],
		"solvers": ["greedy"], "seeds": [1, 2]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("expanded %d scenarios, want 2", len(scs))
	}
	if scs[0].DistBackend != "auto" || scs[0].EvalMode != "auto" {
		t.Fatalf("backend/eval defaults not applied: %+v", scs[0])
	}
}

func TestSocialFamilyCollapsesN(t *testing.T) {
	m := QuickMatrix()
	m.Families = []string{"social"}
	m.N = []int{40, 80}
	m.Experiments = nil
	scs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// The social generator is fixed-size: the n axis must not fan
	// identical runs under different keys.
	want := 2 * 2 * 2 * 2 * 2 * 3 // k × solver × backend × survive × budget × seeds
	if len(scs) != want {
		t.Fatalf("social family expanded to %d runs, want %d", len(scs), want)
	}
	for _, sc := range scs {
		if sc.N != 0 {
			t.Fatalf("social scenario carries n=%d; the key would lie about the generator", sc.N)
		}
	}
}
