// Package sweep turns the single-run commands into a fleet: it expands a
// declarative scenario matrix into concrete runs, fans the runs across a
// bounded pool of worker processes (re-execing mscgen/mscplace/mscbench
// with -jsonl), aggregates the resulting run records into a canonical
// BENCH_*.json trajectory with per-scenario medians and IQRs, and diffs
// trajectories with a noise-aware regression detector that CI gates on.
//
// The package is layered so every stage is testable without processes:
//
//	Matrix.Expand   → []Scenario        (pure)
//	Runner.Run      → telemetry.RunRecord (ProcessRunner or a test fake)
//	RunAll          → []Result          (bounded pool over any Runner)
//	Aggregate       → *Trajectory       (pure; canonical encoding)
//	Diff            → *DiffReport       (pure; typed gate errors)
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Matrix is the declarative scenario space of one sweep: the cross product
// of every axis below. Zero-length required axes fail Validate, so an
// accidentally empty sweep can never masquerade as a clean run.
//
// Seeds is the repetition axis: scenarios are keyed by every axis *except*
// the seed, and the aggregator folds the per-seed runs of one key into
// median/IQR statistics.
type Matrix struct {
	// Families selects the instance generators: "rgg" | "social".
	Families []string `json:"families"`
	// N is the node count (rgg only; social uses its fixed generator size).
	N []int `json:"n"`
	// M is the number of important pairs sampled per instance.
	M []int `json:"m"`
	// Pt is the failure-probability threshold p_t.
	Pt []float64 `json:"p_t"`
	// K is the shortcut budget.
	K []int `json:"k"`
	// Solvers names the mscplace algorithms to run:
	// sandwich|greedy|mu|nu|ea|aea|random|cn.
	Solvers []string `json:"solvers"`
	// DistBackends and EvalModes mirror the -dist-backend and -eval flags.
	DistBackends []string `json:"dist_backends"`
	EvalModes    []string `json:"eval_modes"`
	// Survive mirrors the -survive flag on place scenarios:
	// auto|none|shortcut|node. Empty means the fault-free default; the
	// scenario key grows a segment only for survivable modes, so existing
	// trajectory keys are unchanged.
	Survive []string `json:"survive,omitempty"`
	// Budget mirrors the -budget flag on place scenarios: a knapsack
	// budget B replacing the cardinality budget k. 0 means cardinality
	// placement; the scenario key grows a /b-<B> segment only for budgeted
	// runs, so existing trajectory keys are unchanged.
	Budget []float64 `json:"budget,omitempty"`
	// Parallelism mirrors -par: 1 = serial, 0 = GOMAXPROCS.
	Parallelism []int `json:"parallelism"`
	// Seeds drives both instance sampling and randomized solvers; one run
	// is launched per (scenario, seed).
	Seeds []int64 `json:"seeds"`
	// Experiments optionally adds whole mscbench experiment runs (one
	// scenario per id × backend × eval × par, repeated per seed). The ids
	// are validated by mscbench itself — an unknown id fails that child.
	Experiments []string `json:"experiments"`
	// Quick marks reduced-scale runs: forwarded to mscbench -quick and
	// recorded in the scenario key so quick and full trajectories never
	// silently diff against each other.
	Quick bool `json:"quick"`
}

// QuickMatrix is the smoke sweep CI runs on every push: 2 cardinality
// budgets × 2 solvers × 2 distance backends (auto and forced bounded) ×
// 2 survivability modes × 2 knapsack budgets (off and B=2 unit-cost) ×
// 3 seeds on a 40-node RGG, plus one whole-suite mscbench experiment —
// a couple hundred child runs, seconds end to end. The survivable half
// gates the worst-case σ⁻ objective, the budgeted half the knapsack
// objective, and the bounded half the sparse-backend equivalence (same σ
// as auto at every scenario key), all against the same baseline
// discipline as the fault-free cardinality runs.
func QuickMatrix() Matrix {
	return Matrix{
		Families:     []string{"rgg"},
		N:            []int{40},
		M:            []int{8},
		Pt:           []float64{0.12},
		K:            []int{2, 3},
		Solvers:      []string{"greedy", "sandwich"},
		DistBackends: []string{"auto", "bounded"},
		EvalModes:    []string{"auto"},
		Survive:      []string{"none", "shortcut"},
		Budget:       []float64{0, 2},
		Parallelism:  []int{1},
		Seeds:        []int64{1, 2, 3},
		Experiments:  []string{"table1"},
		Quick:        true,
	}
}

// MatrixError reports an invalid matrix axis.
type MatrixError struct {
	Axis   string // the offending field, e.g. "solvers"
	Reason string
}

func (e *MatrixError) Error() string {
	return fmt.Sprintf("sweep: invalid matrix axis %s: %s", e.Axis, e.Reason)
}

var (
	validFamilies = map[string]bool{"rgg": true, "social": true}
	validSolvers  = map[string]bool{"sandwich": true, "greedy": true, "mu": true, "nu": true, "ea": true, "aea": true, "random": true, "cn": true}
	validBackends = map[string]bool{"auto": true, "dense": true, "lazy": true, "bounded": true}
	validEvals    = map[string]bool{"auto": true, "incremental": true, "rebuild": true}
	validSurvive  = map[string]bool{"auto": true, "none": true, "shortcut": true, "node": true}
)

// Validate checks every axis and returns the first violation as a typed
// *MatrixError. A matrix whose place axes are all empty but that names
// Experiments is valid (a bench-only sweep), and vice versa.
func (m Matrix) Validate() error {
	place := len(m.Solvers) > 0
	if !place && len(m.Experiments) == 0 {
		return &MatrixError{Axis: "solvers", Reason: "no solvers and no experiments: the sweep would run nothing"}
	}
	if len(m.Seeds) == 0 {
		return &MatrixError{Axis: "seeds", Reason: "at least one seed is required"}
	}
	seen := make(map[int64]bool, len(m.Seeds))
	for _, s := range m.Seeds {
		if seen[s] {
			return &MatrixError{Axis: "seeds", Reason: fmt.Sprintf("seed %d repeats: repeated seeds would double-count one run in the medians", s)}
		}
		seen[s] = true
	}
	if err := validateNames("dist_backends", m.DistBackends, validBackends); err != nil {
		return err
	}
	if err := validateNames("eval_modes", m.EvalModes, validEvals); err != nil {
		return err
	}
	if err := validateNames("survive", m.Survive, validSurvive); err != nil {
		return err
	}
	for _, p := range m.Parallelism {
		if p < 0 {
			return &MatrixError{Axis: "parallelism", Reason: fmt.Sprintf("negative worker count %d", p)}
		}
	}
	for _, b := range m.Budget {
		if b != b || b < 0 || b > 1e18 {
			return &MatrixError{Axis: "budget", Reason: fmt.Sprintf("budget %v must be finite and non-negative", b)}
		}
	}
	for _, id := range m.Experiments {
		if strings.TrimSpace(id) == "" {
			return &MatrixError{Axis: "experiments", Reason: "empty experiment id"}
		}
	}
	if !place {
		return nil
	}
	if err := validateNames("families", m.Families, validFamilies); err != nil {
		return err
	}
	if err := validateNames("solvers", m.Solvers, validSolvers); err != nil {
		return err
	}
	if len(m.Families) == 0 {
		return &MatrixError{Axis: "families", Reason: "solvers given but no graph families"}
	}
	for axis, xs := range map[string][]int{"n": m.N, "m": m.M, "k": m.K} {
		if len(xs) == 0 {
			return &MatrixError{Axis: axis, Reason: "solvers given but axis is empty"}
		}
		for _, x := range xs {
			if x <= 0 {
				return &MatrixError{Axis: axis, Reason: fmt.Sprintf("non-positive value %d", x)}
			}
		}
	}
	if len(m.Pt) == 0 {
		return &MatrixError{Axis: "p_t", Reason: "solvers given but axis is empty"}
	}
	for _, pt := range m.Pt {
		if !(pt > 0 && pt < 1) {
			return &MatrixError{Axis: "p_t", Reason: fmt.Sprintf("threshold %v outside (0,1)", pt)}
		}
	}
	return nil
}

func validateNames(axis string, names []string, valid map[string]bool) error {
	for _, name := range names {
		if !valid[name] {
			known := make([]string, 0, len(valid))
			for k := range valid {
				known = append(known, k)
			}
			sort.Strings(known)
			return &MatrixError{Axis: axis, Reason: fmt.Sprintf("unknown value %q (valid: %s)", name, strings.Join(known, ", "))}
		}
	}
	return nil
}

// Scenario kinds.
const (
	// KindPlace generates an instance with mscgen and solves it with
	// mscplace.
	KindPlace = "place"
	// KindBench runs one mscbench experiment id.
	KindBench = "bench"
)

// Scenario is one fully bound run: every matrix axis pinned to a value.
// Scenarios that differ only in Seed share a Key and are folded together
// by the aggregator.
type Scenario struct {
	Kind string `json:"kind"`

	// Place axes (Kind == KindPlace).
	Family string  `json:"family,omitempty"`
	N      int     `json:"n,omitempty"`
	M      int     `json:"m,omitempty"`
	Pt     float64 `json:"p_t,omitempty"`
	K      int     `json:"k,omitempty"`
	Solver string  `json:"solver,omitempty"`
	// Survive is the -survive mode; empty or "none" is the fault-free
	// objective and adds no key segment.
	Survive string `json:"survive,omitempty"`
	// Budget is the -budget knapsack budget; 0 is cardinality placement
	// and adds no key segment.
	Budget float64 `json:"budget,omitempty"`

	// Bench axis (Kind == KindBench).
	Experiment string `json:"experiment,omitempty"`

	// Shared axes.
	DistBackend string `json:"dist_backend"`
	EvalMode    string `json:"eval_mode"`
	Par         int    `json:"par"`
	Quick       bool   `json:"quick"`
	Seed        int64  `json:"seed"`
}

// Key is the canonical scenario identity inside a trajectory: every axis
// except the seed, in a fixed order, so two sweeps of the same matrix
// produce byte-identical keys. Example:
//
//	place/rgg/n40/m8/pt0.12/k2/greedy/auto/auto/par1
//	bench/table1/quick/auto/auto/par0
func (s Scenario) Key() string {
	switch s.Kind {
	case KindBench:
		quick := "full"
		if s.Quick {
			quick = "quick"
		}
		return fmt.Sprintf("bench/%s/%s/%s/%s/par%d", s.Experiment, quick, s.DistBackend, s.EvalMode, s.Par)
	default:
		key := fmt.Sprintf("place/%s/n%d/m%d/pt%s/k%d/%s/%s/%s/par%d",
			s.Family, s.N, s.M, formatPt(s.Pt), s.K, s.Solver, s.DistBackend, s.EvalMode, s.Par)
		// Survivable runs get their own segment; fault-free runs keep the
		// historical key so existing baselines diff cleanly.
		if s.Survive != "" && s.Survive != "none" && s.Survive != "auto" {
			key += "/sv-" + s.Survive
		}
		// Budgeted runs likewise: cardinality runs keep the historical key.
		if s.Budget > 0 {
			key += "/b-" + formatPt(s.Budget)
		}
		return key
	}
}

// InstanceKey identifies the generated problem instance a place scenario
// needs: the generator inputs only. Scenarios that differ in solver,
// backend, eval mode, or parallelism share one instance file.
func (s Scenario) InstanceKey() string {
	return fmt.Sprintf("%s-n%d-m%d-pt%s-k%d-seed%d", s.Family, s.N, s.M, formatPt(s.Pt), s.K, s.Seed)
}

// formatPt renders a threshold compactly and unambiguously for keys
// ("0.12", not "0.120000").
func formatPt(pt float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", pt), "0"), ".")
}

// Expand validates the matrix and unrolls its cross product into the
// deterministic scenario order the pool and the aggregator both rely on:
// place scenarios first (axes varying innermost-to-outermost in the order
// seed, par, budget, survive, eval, backend, solver, k, pt, m, n, family),
// then bench scenarios.
func (m Matrix) Expand() ([]Scenario, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	backends := orDefault(m.DistBackends, "auto")
	evals := orDefault(m.EvalModes, "auto")
	survives := orDefault(m.Survive, "auto")
	budgets := m.Budget
	if len(budgets) == 0 {
		budgets = []float64{0}
	}
	pars := m.Parallelism
	if len(pars) == 0 {
		pars = []int{0}
	}
	var out []Scenario
	for _, family := range m.Families {
		ns := m.N
		if family == "social" {
			// The social generator has a fixed size; collapse the n axis so
			// the matrix does not fan identical runs under different keys.
			ns = ns[:1]
		}
		for _, n := range ns {
			for _, mm := range m.M {
				for _, pt := range m.Pt {
					for _, k := range m.K {
						for _, solver := range m.Solvers {
							for _, backend := range backends {
								for _, eval := range evals {
									for _, survive := range survives {
										for _, budget := range budgets {
											for _, par := range pars {
												for _, seed := range m.Seeds {
													sc := Scenario{
														Kind: KindPlace, Family: family, N: n, M: mm, Pt: pt, K: k,
														Solver: solver, DistBackend: backend, EvalMode: eval,
														Survive: survive, Budget: budget, Par: par, Quick: m.Quick, Seed: seed,
													}
													if family == "social" {
														sc.N = 0 // generator-fixed; keep the key honest
													}
													out = append(out, sc)
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	for _, id := range m.Experiments {
		for _, backend := range backends {
			for _, eval := range evals {
				for _, par := range pars {
					for _, seed := range m.Seeds {
						out = append(out, Scenario{
							Kind: KindBench, Experiment: id,
							DistBackend: backend, EvalMode: eval, Par: par,
							Quick: m.Quick, Seed: seed,
						})
					}
				}
			}
		}
	}
	return out, nil
}

func orDefault(xs []string, def string) []string {
	if len(xs) == 0 {
		return []string{def}
	}
	return xs
}

// ReadMatrix decodes a matrix spec from JSON, rejecting unknown fields so
// a typo'd axis name ("solver" for "solvers") cannot silently produce an
// empty axis, and validates the result.
func ReadMatrix(r io.Reader) (Matrix, error) {
	var m Matrix
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Matrix{}, fmt.Errorf("sweep: matrix spec: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Matrix{}, err
	}
	return m, nil
}
