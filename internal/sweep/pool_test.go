package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msc/internal/telemetry"
)

// fakeRunner implements Runner in-process: per-scenario canned records or
// errors, with concurrency accounting.
type fakeRunner struct {
	mu          sync.Mutex
	inFlight    int
	maxInFlight int
	calls       atomic.Int64
	delay       time.Duration
	fail        func(sc Scenario) error
	record      func(sc Scenario) telemetry.RunRecord
}

func (f *fakeRunner) Run(ctx context.Context, sc Scenario) (telemetry.RunRecord, error) {
	f.calls.Add(1)
	f.mu.Lock()
	f.inFlight++
	if f.inFlight > f.maxInFlight {
		f.maxInFlight = f.inFlight
	}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.inFlight--
		f.mu.Unlock()
	}()
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.fail != nil {
		if err := f.fail(sc); err != nil {
			return telemetry.RunRecord{}, err
		}
	}
	if f.record != nil {
		return f.record(sc), nil
	}
	return telemetry.RunRecord{Name: sc.Solver, Seed: sc.Seed, Sigma: 1, WallMS: 1}, nil
}

func quickScenarios(t *testing.T) []Scenario {
	t.Helper()
	scs, err := QuickMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	return scs
}

func TestRunAllPreservesExpansionOrder(t *testing.T) {
	scs := quickScenarios(t)
	f := &fakeRunner{record: func(sc Scenario) telemetry.RunRecord {
		return telemetry.RunRecord{Name: sc.Key(), Seed: sc.Seed}
	}}
	results := RunAll(context.Background(), f, scs, 8, nil)
	if len(results) != len(scs) {
		t.Fatalf("%d results for %d scenarios", len(results), len(scs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Scenario != scs[i] || res.Record.Name != scs[i].Key() || res.Record.Seed != scs[i].Seed {
			t.Fatalf("result %d out of order: %+v", i, res)
		}
	}
	if got := f.calls.Load(); got != int64(len(scs)) {
		t.Fatalf("runner called %d times for %d scenarios", got, len(scs))
	}
}

func TestRunAllBoundsConcurrency(t *testing.T) {
	scs := quickScenarios(t)
	f := &fakeRunner{delay: 2 * time.Millisecond}
	RunAll(context.Background(), f, scs, 3, nil)
	if f.maxInFlight > 3 {
		t.Fatalf("observed %d concurrent runs with a pool of 3", f.maxInFlight)
	}
}

func TestRunAllCollectsPerRunErrors(t *testing.T) {
	scs := quickScenarios(t)
	boom := errors.New("child exploded")
	f := &fakeRunner{fail: func(sc Scenario) error {
		if sc.Seed == 2 {
			return fmt.Errorf("seed 2: %w", boom)
		}
		return nil
	}}
	var progressed atomic.Int64
	results := RunAll(context.Background(), f, scs, 4, func(Result) { progressed.Add(1) })
	var failed, ok int
	for _, res := range results {
		if res.Err != nil {
			failed++
			if !errors.Is(res.Err, boom) {
				t.Fatalf("error lost its cause: %v", res.Err)
			}
		} else {
			ok++
		}
	}
	// One seed of three fails per scenario key (34 keys).
	if failed != 34 || ok != 68 {
		t.Fatalf("failed=%d ok=%d, want 34/68", failed, ok)
	}
	if progressed.Load() != int64(len(scs)) {
		t.Fatalf("progress called %d times for %d runs", progressed.Load(), len(scs))
	}
}

func TestRunAllCanceledContextFailsQueuedRuns(t *testing.T) {
	scs := quickScenarios(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &fakeRunner{}
	results := RunAll(ctx, f, scs, 2, nil)
	for i, res := range results {
		if res.Err == nil {
			t.Fatalf("run %d succeeded under a canceled context", i)
		}
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("run %d error does not unwrap to context.Canceled: %v", i, res.Err)
		}
	}
	if f.calls.Load() != 0 {
		t.Fatalf("runner invoked %d times under a pre-canceled context", f.calls.Load())
	}
}

func TestRunAllZeroWorkersStillRuns(t *testing.T) {
	scs := quickScenarios(t)[:2]
	f := &fakeRunner{}
	results := RunAll(context.Background(), f, scs, 0, nil)
	for _, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if f.maxInFlight != 1 {
		t.Fatalf("workers=0 should clamp to serial, observed %d in flight", f.maxInFlight)
	}
}
