package sweep

import (
	"context"
	"errors"
	"hash/fnv"
	"io"
	"io/fs"
	"os/exec"
	"sync"
	"time"

	"msc/internal/telemetry"
)

// Transient reports whether a run failure is worth retrying: an infra
// fault that a fresh attempt can plausibly clear, never a deterministic
// solver error (which would fail identically every time and triple the
// sweep's wall clock for nothing). Transient classes:
//
//   - exec: the child could not be started at all (exec.Error, PathError —
//     e.g. a momentarily unavailable binary on a network mount), or it was
//     killed by a signal it did not choose (ExitCode −1: the OOM killer's
//     SIGKILL, a stray kill). A child that ran and exited nonzero made a
//     decision; its error is not transient.
//   - ingest: the child exited 0 but its record stream is missing or cut
//     short (torn write from an external kill between flush and rename).
//
// Cancellation of the sweep's own context is a decision, not a fault, and
// is never transient — likewise the generate stage, whose outcome is
// cached per instance key (a retry would replay the cached error).
func Transient(err error) bool {
	var re *RunError
	if !errors.As(err, &re) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	switch re.Stage {
	case "exec":
		var xe *exec.ExitError
		if errors.As(err, &xe) {
			return xe.ExitCode() == -1 // signal-killed, not a solver exit
		}
		var ee *exec.Error
		var pe *fs.PathError
		return errors.As(err, &ee) || errors.As(err, &pe)
	case "ingest":
		return errors.Is(err, fs.ErrNotExist) || errors.Is(err, io.ErrUnexpectedEOF)
	}
	return false
}

// Retrier wraps a Runner with bounded retry of Transient failures, so one
// OOM-killed child does not scrap an hours-long sweep. Deterministic
// solver failures pass through untouched on the first attempt. Attempts
// back off exponentially with a per-scenario deterministic jitter
// (hashed, not random), keeping sweeps reproducible run to run.
//
// Retrier implements RetryReporter, so RunAll records how many retries
// each scenario consumed in its Result — a sweep that only passes on
// retry is visible, not silent.
type Retrier struct {
	Runner Runner
	// Max bounds the retries per scenario (attempts = Max+1); 0 means the
	// default of 2.
	Max int
	// BaseDelay is the first backoff (default 250ms); attempt i waits
	// BaseDelay·2^i plus up to 50% deterministic jitter.
	BaseDelay time.Duration
	// Sleep is injectable for tests (default time.Sleep).
	Sleep func(time.Duration)

	mu      sync.Mutex
	retries map[string]int
}

// Run implements Runner.
func (r *Retrier) Run(ctx context.Context, sc Scenario) (telemetry.RunRecord, error) {
	max := r.Max
	if max <= 0 {
		max = 2
	}
	base := r.BaseDelay
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	attempt := 0
	for {
		rec, err := r.Runner.Run(ctx, sc)
		if err == nil || attempt >= max || !Transient(err) || ctx.Err() != nil {
			if attempt > 0 {
				r.mu.Lock()
				if r.retries == nil {
					r.retries = make(map[string]int)
				}
				r.retries[retryKey(sc)] = attempt
				r.mu.Unlock()
			}
			return rec, err
		}
		sleep(backoffDelay(base, attempt, sc))
		attempt++
	}
}

// TakeRetries implements RetryReporter: it removes and returns the retry
// count consumed by sc's run (0 when it succeeded first try).
func (r *Retrier) TakeRetries(sc Scenario) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := retryKey(sc)
	n := r.retries[key]
	delete(r.retries, key)
	return n
}

// TakeMetrics forwards MetricsHarvester to the wrapped runner, so ops
// harvesting survives the retry layer.
func (r *Retrier) TakeMetrics(sc Scenario) map[string]float64 {
	if h, ok := r.Runner.(MetricsHarvester); ok {
		return h.TakeMetrics(sc)
	}
	return nil
}

func retryKey(sc Scenario) string {
	return sc.Key() + "|" + sc.InstanceKey()
}

// backoffDelay is BaseDelay·2^attempt plus up to 50% jitter derived from
// an FNV hash of (scenario, attempt) — decorrelated across scenarios,
// identical across sweep invocations.
func backoffDelay(base time.Duration, attempt int, sc Scenario) time.Duration {
	d := base << uint(attempt)
	h := fnv.New64a()
	io.WriteString(h, retryKey(sc))
	h.Write([]byte{byte(attempt)})
	frac := float64(h.Sum64()%1024) / 1024
	return d + time.Duration(frac*float64(d)/2)
}
