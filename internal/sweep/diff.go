package sweep

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Metric classes drive which threshold applies when the differ compares
// two trajectories.
const (
	// classWall marks wall-clock metrics: real noise, generous threshold,
	// optionally disabled entirely for cross-host comparisons.
	classWall = "wall"
	// classCounter marks deterministic work counters (Dijkstra runs,
	// candidate evals, pairs rescanned, …): identical for identical code
	// and seeds, so even a small sustained increase is a real regression.
	classCounter = "counter"
	// classQuality marks solution quality (σ): higher is better, and a
	// drop is a regression even when the code got faster.
	classQuality = "quality"
)

// gatedMetrics lists every metric the regression gate inspects, with its
// class. Metrics outside this map (the row-cache traffic, whose totals
// legitimately vary with goroutine interleaving, and the data-dependent
// merge splits rows_merged/rows_unchanged/pairs_skipped) are recorded in
// trajectories but never gated.
var gatedMetrics = map[string]string{
	"wall_ms": classWall,
	"sigma":   classQuality,

	"counters.dijkstra_runs":    classCounter,
	"counters.edge_relaxations": classCounter,
	"counters.candidate_evals":  classCounter,
	"counters.sigma_evals":      classCounter,
	"counters.mu_evals":         classCounter,
	"counters.nu_evals":         classCounter,
	"counters.overlay_builds":   classCounter,
	"counters.overlay_queries":  classCounter,
	"counters.overlay_rows":     classCounter,
	"counters.pairs_rescanned":  classCounter,
}

// DiffOptions are the noise thresholds of the regression gate. A metric
// is flagged only when it worsens by more than the relative threshold
// AND by more than the absolute floor — the floor keeps tiny scenarios
// (a 2 ms run, a 30-op counter) from flapping on quantization noise.
type DiffOptions struct {
	// WallPct is the relative threshold (percent) for wall-clock metrics;
	// <= 0 disables wall gating entirely (the right setting when baseline
	// and candidate ran on different hosts). WallFloorMS is the absolute
	// floor in milliseconds.
	WallPct     float64
	WallFloorMS float64
	// CounterPct / CounterFloor gate the deterministic work counters.
	CounterPct   float64
	CounterFloor float64
	// QualityFloor is the absolute floor for σ, measured in maintained
	// pairs: σ is tiny compared to the counters, so it gets its own floor
	// (the relative threshold is shared with CounterPct).
	QualityFloor float64
}

// DefaultDiffOptions: 30%/5ms on wall clock, 1%/16 ops on deterministic
// counters, 1%/0.5 pairs on σ (any whole-pair drop beyond the relative
// threshold is flagged).
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{WallPct: 30, WallFloorMS: 5, CounterPct: 1, CounterFloor: 16, QualityFloor: 0.5}
}

// Regression kinds.
const (
	// KindMetric: a gated metric worsened beyond threshold.
	KindMetric = "metric_regressed"
	// KindMetricMissing: the candidate dropped a gated metric the
	// baseline carried.
	KindMetricMissing = "metric_missing"
	// KindScenarioRemoved: the candidate no longer runs a baseline
	// scenario — coverage loss is a gate failure, not a silent shrink.
	KindScenarioRemoved = "scenario_removed"
	// KindSeedsChanged: same scenario, different seed set — the samples
	// are different populations and the comparison would be meaningless.
	KindSeedsChanged = "seeds_changed"
)

// Regression is one flagged finding of a trajectory diff.
type Regression struct {
	Kind     string  `json:"kind"`
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric,omitempty"`
	Old      float64 `json:"old,omitempty"`
	New      float64 `json:"new,omitempty"`
	// Pct is the relative worsening in percent (+Inf encoded as a very
	// large number never occurs: old==0 deltas are gated by the absolute
	// floor and reported with Pct 0).
	Pct float64 `json:"pct,omitempty"`
	// Threshold is the relative threshold that was exceeded.
	Threshold float64 `json:"threshold,omitempty"`
	// BaselineIQR is the baseline's noise estimate for the metric,
	// reported so a reader can judge a marginal flag.
	BaselineIQR float64 `json:"baseline_iqr,omitempty"`
}

func (r Regression) String() string {
	switch r.Kind {
	case KindMetric:
		return fmt.Sprintf("%s: %s worsened %.6g -> %.6g (%+.1f%%, threshold %.1f%%, baseline IQR %.6g)",
			r.Scenario, r.Metric, r.Old, r.New, r.Pct, r.Threshold, r.BaselineIQR)
	case KindMetricMissing:
		return fmt.Sprintf("%s: gated metric %s missing from candidate", r.Scenario, r.Metric)
	case KindScenarioRemoved:
		return fmt.Sprintf("%s: scenario removed from candidate", r.Scenario)
	case KindSeedsChanged:
		return fmt.Sprintf("%s: seed set changed; runs are not comparable", r.Scenario)
	default:
		return fmt.Sprintf("%s: %s", r.Scenario, r.Kind)
	}
}

// Improvement mirrors Regression for metrics that got better beyond the
// same thresholds; purely informational.
type Improvement struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	Pct      float64 `json:"pct"`
}

// DiffReport is the typed outcome of comparing a candidate trajectory
// against a baseline.
type DiffReport struct {
	Regressions  []Regression  `json:"regressions"`
	Improvements []Improvement `json:"improvements"`
	// Added lists candidate scenarios the baseline lacks (informational:
	// growing coverage is not a regression).
	Added []string `json:"added"`
	// Compared counts scenario/metric pairs actually gated.
	Compared int `json:"compared"`
}

// RegressionError is the typed gate failure carrying the full report.
type RegressionError struct{ Report *DiffReport }

func (e *RegressionError) Error() string {
	return fmt.Sprintf("sweep: regression gate failed: %d finding(s)\n%s",
		len(e.Report.Regressions), e.Report.Format())
}

// Gate returns nil for a clean report and a typed *RegressionError
// otherwise.
func (r *DiffReport) Gate() error {
	if len(r.Regressions) == 0 {
		return nil
	}
	return &RegressionError{Report: r}
}

// Format renders the report for humans, regressions first.
func (r *DiffReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compared %d scenario-metric pairs: %d regression(s), %d improvement(s), %d scenario(s) added\n",
		r.Compared, len(r.Regressions), len(r.Improvements), len(r.Added))
	for _, reg := range r.Regressions {
		fmt.Fprintf(&b, "  REGRESSION %s\n", reg)
	}
	for _, imp := range r.Improvements {
		fmt.Fprintf(&b, "  improved   %s: %s %.6g -> %.6g (%+.1f%%)\n", imp.Scenario, imp.Metric, imp.Old, imp.New, imp.Pct)
	}
	for _, key := range r.Added {
		fmt.Fprintf(&b, "  added      %s\n", key)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Diff compares candidate against baseline. Both must be validated
// trajectories of the same schema version (DecodeTrajectory enforces
// this for documents read from disk; programmatic callers get a typed
// *TrajectoryError here for nil inputs).
//
// Per shared scenario it gates the median of every metric in
// gatedMetrics present in the baseline: worsenings beyond the class
// threshold (relative) and floor (absolute) become Regressions, matching
// improvements are reported informationally, and a gated metric missing
// from the candidate is itself a regression. Scenarios only in the
// baseline are KindScenarioRemoved findings; scenarios with a changed
// seed set are KindSeedsChanged.
func Diff(baseline, candidate *Trajectory, opts DiffOptions) (*DiffReport, error) {
	if baseline == nil || candidate == nil {
		return nil, &TrajectoryError{Reason: "diff requires two non-nil trajectories"}
	}
	if baseline.SchemaVersion != candidate.SchemaVersion {
		return nil, &TrajectoryError{Reason: fmt.Sprintf("schema versions differ: baseline %d, candidate %d", baseline.SchemaVersion, candidate.SchemaVersion)}
	}
	report := &DiffReport{}
	for _, key := range sortedKeys(candidate.Scenarios) {
		if _, ok := baseline.Scenarios[key]; !ok {
			report.Added = append(report.Added, key)
		}
	}
	for _, key := range sortedKeys(baseline.Scenarios) {
		base := baseline.Scenarios[key]
		cand, ok := candidate.Scenarios[key]
		if !ok {
			report.Regressions = append(report.Regressions, Regression{Kind: KindScenarioRemoved, Scenario: key})
			continue
		}
		if !sameSeeds(base.Seeds, cand.Seeds) {
			report.Regressions = append(report.Regressions, Regression{Kind: KindSeedsChanged, Scenario: key})
			continue
		}
		for _, metric := range sortedKeys(base.Metrics) {
			class, gated := gatedMetrics[metric]
			if !gated {
				continue
			}
			pct, floor := opts.CounterPct, opts.CounterFloor
			switch class {
			case classWall:
				if opts.WallPct <= 0 {
					continue
				}
				pct, floor = opts.WallPct, opts.WallFloorMS
			case classQuality:
				floor = opts.QualityFloor
			}
			baseStats := base.Metrics[metric]
			candStats, ok := cand.Metrics[metric]
			if !ok {
				report.Regressions = append(report.Regressions, Regression{Kind: KindMetricMissing, Scenario: key, Metric: metric})
				continue
			}
			report.Compared++
			// delta > 0 means "worse": more work/time, or less σ.
			delta := candStats.Median - baseStats.Median
			if class == classQuality {
				delta = -delta
			}
			rel := relPct(delta, baseStats.Median)
			switch {
			case delta > 0 && exceeds(delta, rel, pct, floor):
				report.Regressions = append(report.Regressions, Regression{
					Kind: KindMetric, Scenario: key, Metric: metric,
					Old: baseStats.Median, New: candStats.Median,
					Pct: signedPct(baseStats.Median, candStats.Median), Threshold: pct,
					BaselineIQR: baseStats.IQR,
				})
			case delta < 0 && exceeds(-delta, -rel, pct, floor):
				report.Improvements = append(report.Improvements, Improvement{
					Scenario: key, Metric: metric,
					Old: baseStats.Median, New: candStats.Median,
					Pct: signedPct(baseStats.Median, candStats.Median),
				})
			}
		}
	}
	return report, nil
}

// exceeds reports whether a worsening of absolute size delta (and
// relative size rel percent) clears both the relative threshold and the
// absolute floor.
func exceeds(delta, rel, pct, floor float64) bool {
	if delta <= floor {
		return false
	}
	// A zero baseline has no meaningful relative change; the absolute
	// floor alone decides.
	if math.IsInf(rel, 0) {
		return true
	}
	return rel > pct
}

// relPct is the relative worsening in percent against the baseline
// median; ±Inf when the baseline is zero.
func relPct(delta, base float64) float64 {
	if base == 0 {
		if delta == 0 {
			return 0
		}
		return math.Inf(int(math.Copysign(1, delta)))
	}
	return 100 * delta / math.Abs(base)
}

// signedPct is the plain relative change cur vs old for display (+ means
// the value went up).
func signedPct(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (cur - old) / math.Abs(old)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sameSeeds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
