package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"msc/internal/telemetry"
)

// TrajectorySchemaVersion is the schema_version the encoder writes and
// the decoder requires. Bump it when the trajectory format changes shape;
// the differ refuses to compare across versions.
const TrajectorySchemaVersion = 1

// MetricStats summarizes one metric across a scenario's per-seed runs.
// All values are rounded to a fixed precision (3 decimals) before
// encoding so a trajectory file is byte-stable for byte-stable inputs.
type MetricStats struct {
	Median float64 `json:"median"`
	// IQR is the interquartile range (Tukey hinges: the medians of the
	// lower and upper halves), the noise measure the differ reports next
	// to a flagged delta.
	IQR float64 `json:"iqr"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// ScenarioStats is the aggregate of every run sharing one scenario key.
type ScenarioStats struct {
	// Runs is the number of runs folded in; Seeds the sorted seeds they
	// used. The differ refuses to compare scenarios whose seed sets
	// differ — the samples would not be the same population.
	Runs  int     `json:"runs"`
	Seeds []int64 `json:"seeds"`
	// Metrics maps metric name (sigma, wall_ms, counters.<field>) to its
	// summary statistics.
	Metrics map[string]MetricStats `json:"metrics"`
}

// Trajectory is the canonical BENCH_*.json document: one scenario-keyed
// map of aggregate statistics. It deliberately carries no timestamp or
// toolchain stamp, so re-running an identical sweep on identical code
// yields an identical file up to wall-clock metrics.
type Trajectory struct {
	SchemaVersion int                      `json:"schema_version"`
	Tool          string                   `json:"tool"`
	Host          string                   `json:"host"`
	Scenarios     map[string]ScenarioStats `json:"scenarios"`
}

// AggregateError is a typed aggregation failure.
type AggregateError struct{ Reason string }

func (e *AggregateError) Error() string { return "sweep: aggregate: " + e.Reason }

// Aggregate folds per-run results into a trajectory: runs sharing a
// scenario key become one ScenarioStats with median/IQR per metric. It
// fails (typed *AggregateError) on an empty result set, on any failed
// run, and on duplicate (key, seed) pairs — a sweep that double-ran a
// scenario must not silently skew its own medians.
func Aggregate(host string, results []Result) (*Trajectory, error) {
	if len(results) == 0 {
		return nil, &AggregateError{Reason: "no results to aggregate"}
	}
	byKey := make(map[string][]Result)
	seen := make(map[string]bool, len(results))
	for _, res := range results {
		key := res.Scenario.Key()
		if res.Err != nil {
			return nil, &AggregateError{Reason: fmt.Sprintf("run %s seed %d failed: %v", key, res.Scenario.Seed, res.Err)}
		}
		dup := fmt.Sprintf("%s#%d", key, res.Scenario.Seed)
		if seen[dup] {
			return nil, &AggregateError{Reason: fmt.Sprintf("duplicate run for %s seed %d", key, res.Scenario.Seed)}
		}
		seen[dup] = true
		byKey[key] = append(byKey[key], res)
	}
	t := &Trajectory{
		SchemaVersion: TrajectorySchemaVersion,
		Tool:          "mscsweep",
		Host:          host,
		Scenarios:     make(map[string]ScenarioStats, len(byKey)),
	}
	for key, runs := range byKey {
		stats := ScenarioStats{Runs: len(runs), Metrics: make(map[string]MetricStats)}
		samples := make(map[string][]float64)
		for _, res := range runs {
			stats.Seeds = append(stats.Seeds, res.Scenario.Seed)
			metrics, err := recordMetrics(res.Record)
			if err != nil {
				return nil, &AggregateError{Reason: fmt.Sprintf("run %s seed %d: %v", key, res.Scenario.Seed, err)}
			}
			for name, v := range metrics {
				samples[name] = append(samples[name], v)
			}
		}
		sort.Slice(stats.Seeds, func(i, j int) bool { return stats.Seeds[i] < stats.Seeds[j] })
		for name, xs := range samples {
			if len(xs) != len(runs) {
				return nil, &AggregateError{Reason: fmt.Sprintf("scenario %s: metric %s present in %d of %d runs", key, name, len(xs), len(runs))}
			}
			stats.Metrics[name] = summarize(xs)
		}
		t.Scenarios[key] = stats
	}
	return t, nil
}

// recordMetrics flattens one run record into the metric namespace the
// trajectory stores: sigma, wall_ms, and every counter field under
// "counters.". Counter names come from the CounterSnapshot JSON schema
// itself (via an encode/decode round trip), so a counter added to the
// telemetry schema flows into trajectories without touching this package.
func recordMetrics(rec telemetry.RunRecord) (map[string]float64, error) {
	m := map[string]float64{
		"sigma":   float64(rec.Sigma),
		"wall_ms": rec.WallMS,
	}
	body, err := json.Marshal(rec.Counters)
	if err != nil {
		return nil, fmt.Errorf("encode counters: %v", err)
	}
	var counters map[string]float64
	if err := json.Unmarshal(body, &counters); err != nil {
		return nil, fmt.Errorf("decode counters: %v", err)
	}
	for name, v := range counters {
		m["counters."+name] = v
	}
	return m, nil
}

// summarize computes the rounded summary statistics of a non-empty
// sample.
func summarize(xs []float64) MetricStats {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	q1, q3 := hinges(sorted)
	return MetricStats{
		Median: round3(median(sorted)),
		IQR:    round3(q3 - q1),
		Min:    round3(sorted[0]),
		Max:    round3(sorted[len(sorted)-1]),
	}
}

// median of an already sorted, non-empty sample.
func median(sorted []float64) float64 {
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// hinges returns Tukey's lower and upper hinges (the medians of the lower
// and upper halves, sharing the middle element for odd lengths).
func hinges(sorted []float64) (q1, q3 float64) {
	n := len(sorted)
	if n < 2 {
		return sorted[0], sorted[0]
	}
	half := n / 2
	lower := sorted[:half]
	upper := sorted[n-half:]
	if n%2 == 1 {
		lower = sorted[:half+1]
		upper = sorted[half:]
	}
	return median(lower), median(upper)
}

// round3 rounds to 3 decimals — the fixed float formatting of the
// trajectory file. Counters are integers and survive unchanged; wall
// times keep microsecond resolution, far below any gating threshold.
func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}

// TrajectoryError is a typed trajectory decode/validation failure.
type TrajectoryError struct{ Reason string }

func (e *TrajectoryError) Error() string { return "sweep: trajectory: " + e.Reason }

// Encode renders the canonical byte representation: two-space indented
// JSON with sorted keys (encoding/json sorts map keys) and a trailing
// newline. Golden tests lock the exact bytes.
func (t *Trajectory) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTrajectory parses and validates a trajectory document. Unknown
// fields, a missing or mismatched schema version, and structurally
// invalid scenarios are typed *TrajectoryError failures — the differ
// never operates on a document this function rejected.
func DecodeTrajectory(data []byte) (*Trajectory, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t Trajectory
	if err := dec.Decode(&t); err != nil {
		return nil, &TrajectoryError{Reason: fmt.Sprintf("not a trajectory document: %v", err)}
	}
	// Trailing garbage after the document is corruption, not formatting.
	if dec.More() {
		return nil, &TrajectoryError{Reason: "trailing data after trajectory document"}
	}
	if t.SchemaVersion != TrajectorySchemaVersion {
		return nil, &TrajectoryError{Reason: fmt.Sprintf("schema_version %d, want %d", t.SchemaVersion, TrajectorySchemaVersion)}
	}
	if len(t.Scenarios) == 0 {
		return nil, &TrajectoryError{Reason: "no scenarios"}
	}
	for key, sc := range t.Scenarios {
		if sc.Runs <= 0 {
			return nil, &TrajectoryError{Reason: fmt.Sprintf("scenario %q: non-positive run count %d", key, sc.Runs)}
		}
		if len(sc.Seeds) != sc.Runs {
			return nil, &TrajectoryError{Reason: fmt.Sprintf("scenario %q: %d seeds for %d runs", key, len(sc.Seeds), sc.Runs)}
		}
		if len(sc.Metrics) == 0 {
			return nil, &TrajectoryError{Reason: fmt.Sprintf("scenario %q: no metrics", key)}
		}
		for name, ms := range sc.Metrics {
			for what, v := range map[string]float64{"median": ms.Median, "iqr": ms.IQR, "min": ms.Min, "max": ms.Max} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, &TrajectoryError{Reason: fmt.Sprintf("scenario %q: metric %q has non-finite %s", key, name, what)}
				}
			}
		}
	}
	return &t, nil
}

// ReadTrajectoryFile loads and validates a trajectory from disk.
func ReadTrajectoryFile(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := DecodeTrajectory(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// WriteTrajectoryFile writes the canonical encoding to disk.
func WriteTrajectoryFile(path string, t *Trajectory) error {
	data, err := t.Encode()
	if err != nil {
		return err
	}
	// Atomic replace: a sweep killed mid-write must not leave a torn
	// trajectory where a CI baseline used to be.
	return telemetry.AtomicWriteFile(path, data, 0o644)
}
