package sweep

import (
	"errors"
	"strings"
	"testing"
)

// synthTrajectory builds a two-scenario trajectory with known metric
// medians — the synthetic substrate of the regression-detector self-test.
func synthTrajectory(metrics map[string]map[string]float64) *Trajectory {
	t := &Trajectory{SchemaVersion: TrajectorySchemaVersion, Tool: "mscsweep", Host: "synth", Scenarios: map[string]ScenarioStats{}}
	for key, ms := range metrics {
		stats := ScenarioStats{Runs: 3, Seeds: []int64{1, 2, 3}, Metrics: map[string]MetricStats{}}
		for name, median := range ms {
			stats.Metrics[name] = MetricStats{Median: median, IQR: median / 100, Min: median * 0.9, Max: median * 1.1}
		}
		t.Scenarios[key] = stats
	}
	return t
}

// baseMetrics is a realistic gated-metric profile for one scenario.
func baseMetrics() map[string]float64 {
	return map[string]float64{
		"wall_ms":                  100,
		"sigma":                    10,
		"counters.dijkstra_runs":   4000,
		"counters.candidate_evals": 50000,
		"counters.pairs_rescanned": 8000,
		"counters.row_cache_hits":  12345, // recorded but never gated
	}
}

func synthPair(mutate func(map[string]map[string]float64)) (*Trajectory, *Trajectory) {
	mk := func() map[string]map[string]float64 {
		return map[string]map[string]float64{
			"place/rgg/n100/m17/k6/greedy/auto/auto/par1":   baseMetrics(),
			"place/rgg/n100/m17/k6/sandwich/auto/auto/par1": baseMetrics(),
		}
	}
	baseline := mk()
	candidate := mk()
	mutate(candidate)
	return synthTrajectory(baseline), synthTrajectory(candidate)
}

// flagged extracts "scenario|metric|kind" triples for exact-set asserts.
func flagged(report *DiffReport) map[string]bool {
	out := make(map[string]bool)
	for _, r := range report.Regressions {
		out[r.Scenario+"|"+r.Metric+"|"+r.Kind] = true
	}
	return out
}

const (
	scGreedy   = "place/rgg/n100/m17/k6/greedy/auto/auto/par1"
	scSandwich = "place/rgg/n100/m17/k6/sandwich/auto/auto/par1"
)

// TestDiffInjectedRegressions is the gate's own gate: synthetic
// trajectory pairs with injected faults must flag exactly the expected
// scenario/metric pairs — nothing more, nothing less.
func TestDiffInjectedRegressions(t *testing.T) {
	opts := DefaultDiffOptions() // 30%/5ms wall, 1%/16 counters+σ
	cases := []struct {
		name   string
		mutate func(map[string]map[string]float64)
		want   []string // scenario|metric|kind triples, empty = clean
	}{
		{
			name:   "identical trajectories are clean",
			mutate: func(map[string]map[string]float64) {},
		},
		{
			name: "+5% dijkstra on one scenario flags exactly that scenario",
			mutate: func(c map[string]map[string]float64) {
				c[scGreedy]["counters.dijkstra_runs"] *= 1.05
			},
			want: []string{scGreedy + "|counters.dijkstra_runs|" + KindMetric},
		},
		{
			name: "+50% on two metrics of two scenarios flags all four",
			mutate: func(c map[string]map[string]float64) {
				c[scGreedy]["counters.candidate_evals"] *= 1.5
				c[scGreedy]["counters.pairs_rescanned"] *= 1.5
				c[scSandwich]["counters.candidate_evals"] *= 1.5
				c[scSandwich]["counters.pairs_rescanned"] *= 1.5
			},
			want: []string{
				scGreedy + "|counters.candidate_evals|" + KindMetric,
				scGreedy + "|counters.pairs_rescanned|" + KindMetric,
				scSandwich + "|counters.candidate_evals|" + KindMetric,
				scSandwich + "|counters.pairs_rescanned|" + KindMetric,
			},
		},
		{
			name: "wall slowdown beyond threshold flags",
			mutate: func(c map[string]map[string]float64) {
				c[scSandwich]["wall_ms"] = 150 // +50% > 30%, +50ms > 5ms floor
			},
			want: []string{scSandwich + "|wall_ms|" + KindMetric},
		},
		{
			name: "wall noise below threshold is not flagged",
			mutate: func(c map[string]map[string]float64) {
				c[scGreedy]["wall_ms"] = 120 // +20% < 30%
			},
		},
		{
			name: "counter wiggle below the pct threshold is not flagged",
			mutate: func(c map[string]map[string]float64) {
				c[scGreedy]["counters.pairs_rescanned"] = 8010 // +0.125% < 1%
			},
		},
		{
			name: "sigma drop is a quality regression",
			mutate: func(c map[string]map[string]float64) {
				c[scGreedy]["sigma"] = 8 // −20%: fewer pairs maintained
			},
			want: []string{scGreedy + "|sigma|" + KindMetric},
		},
		{
			name: "sigma increase is an improvement, not a regression",
			mutate: func(c map[string]map[string]float64) {
				c[scGreedy]["sigma"] = 40
			},
		},
		{
			name: "gated metric missing from candidate",
			mutate: func(c map[string]map[string]float64) {
				delete(c[scSandwich], "counters.dijkstra_runs")
			},
			want: []string{scSandwich + "|counters.dijkstra_runs|" + KindMetricMissing},
		},
		{
			name: "ungated metric may regress freely",
			mutate: func(c map[string]map[string]float64) {
				c[scGreedy]["counters.row_cache_hits"] *= 10
			},
		},
		{
			name: "scenario removed from candidate",
			mutate: func(c map[string]map[string]float64) {
				delete(c, scSandwich)
			},
			want: []string{scSandwich + "||" + KindScenarioRemoved},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseline, candidate := synthPair(tc.mutate)
			report, err := Diff(baseline, candidate, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := flagged(report)
			want := make(map[string]bool)
			for _, w := range tc.want {
				want[w] = true
			}
			for w := range want {
				if !got[w] {
					t.Errorf("expected regression not flagged: %s\nreport:\n%s", w, report.Format())
				}
			}
			for g := range got {
				if !want[g] {
					t.Errorf("unexpected regression flagged: %s\nreport:\n%s", g, report.Format())
				}
			}
			if err := report.Gate(); (err == nil) != (len(tc.want) == 0) {
				t.Fatalf("gate outcome wrong: %v for %d expected findings", err, len(tc.want))
			}
		})
	}
}

func TestDiffScenarioAddedIsNotARegression(t *testing.T) {
	baseline, candidate := synthPair(func(c map[string]map[string]float64) {
		c["place/rgg/n200/m30/k8/greedy/auto/auto/par1"] = baseMetrics()
	})
	report, err := Diff(baseline, candidate, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Regressions) != 0 {
		t.Fatalf("added scenario flagged as regression:\n%s", report.Format())
	}
	if len(report.Added) != 1 || report.Added[0] != "place/rgg/n200/m30/k8/greedy/auto/auto/par1" {
		t.Fatalf("added scenario not reported: %v", report.Added)
	}
}

func TestDiffSeedSetChange(t *testing.T) {
	baseline, candidate := synthPair(func(map[string]map[string]float64) {})
	sc := candidate.Scenarios[scGreedy]
	sc.Seeds = []int64{1, 2, 4}
	candidate.Scenarios[scGreedy] = sc
	report, err := Diff(baseline, candidate, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := flagged(report)
	if !got[scGreedy+"||"+KindSeedsChanged] || len(got) != 1 {
		t.Fatalf("seed change not flagged exactly once:\n%s", report.Format())
	}
}

func TestDiffWallGatingDisabled(t *testing.T) {
	baseline, candidate := synthPair(func(c map[string]map[string]float64) {
		c[scGreedy]["wall_ms"] = 10000 // 100× slower
	})
	opts := DefaultDiffOptions()
	opts.WallPct = 0 // cross-host mode
	report, err := Diff(baseline, candidate, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Regressions) != 0 {
		t.Fatalf("wall regression flagged with wall gating disabled:\n%s", report.Format())
	}
}

func TestDiffZeroBaselineUsesAbsoluteFloor(t *testing.T) {
	baseline, candidate := synthPair(func(c map[string]map[string]float64) {
		c[scGreedy]["counters.pairs_rescanned"] = 1000
	})
	sc := baseline.Scenarios[scGreedy]
	sc.Metrics["counters.pairs_rescanned"] = MetricStats{Median: 0}
	report, err := Diff(baseline, candidate, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !flagged(report)[scGreedy+"|counters.pairs_rescanned|"+KindMetric] {
		t.Fatalf("0 -> 1000 not flagged:\n%s", report.Format())
	}
	// But 0 -> 10 stays under the 16-op floor.
	cand2 := candidate.Scenarios[scGreedy]
	cand2.Metrics["counters.pairs_rescanned"] = MetricStats{Median: 10}
	candidate.Scenarios[scGreedy] = cand2
	report, err = Diff(baseline, candidate, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if flagged(report)[scGreedy+"|counters.pairs_rescanned|"+KindMetric] {
		t.Fatalf("0 -> 10 flagged despite the absolute floor:\n%s", report.Format())
	}
}

// TestDiffCounterAbsoluteFloor: a percentage breach alone is not enough —
// tiny scenarios need the absolute floor too.
func TestDiffCounterAbsoluteFloor(t *testing.T) {
	setRescanned := func(tr *Trajectory, v float64) {
		sc := tr.Scenarios[scGreedy]
		sc.Metrics["counters.pairs_rescanned"] = MetricStats{Median: v}
		tr.Scenarios[scGreedy] = sc
	}
	baseline, candidate := synthPair(func(map[string]map[string]float64) {})
	setRescanned(baseline, 500)
	setRescanned(candidate, 510) // +2% > 1%, but +10 ops < 16-op floor
	report, err := Diff(baseline, candidate, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Regressions) != 0 {
		t.Fatalf("sub-floor counter delta flagged:\n%s", report.Format())
	}
	setRescanned(candidate, 530) // +6% and +30 ops: both thresholds cleared
	report, err = Diff(baseline, candidate, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !flagged(report)[scGreedy+"|counters.pairs_rescanned|"+KindMetric] {
		t.Fatalf("above-floor counter regression not flagged:\n%s", report.Format())
	}
}

func TestDiffTypedErrors(t *testing.T) {
	good, _ := synthPair(func(map[string]map[string]float64) {})
	var te *TrajectoryError
	if _, err := Diff(nil, good, DefaultDiffOptions()); !errors.As(err, &te) {
		t.Fatalf("nil baseline: got %v", err)
	}
	other := synthTrajectory(map[string]map[string]float64{"x": baseMetrics()})
	other.SchemaVersion = 2
	if _, err := Diff(good, other, DefaultDiffOptions()); !errors.As(err, &te) {
		t.Fatalf("version mismatch: got %v", err)
	}
}

func TestRegressionErrorNamesFindings(t *testing.T) {
	baseline, candidate := synthPair(func(c map[string]map[string]float64) {
		c[scGreedy]["counters.dijkstra_runs"] *= 2
	})
	report, err := Diff(baseline, candidate, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	gateErr := report.Gate()
	var re *RegressionError
	if !errors.As(gateErr, &re) {
		t.Fatalf("gate returned %T, want *RegressionError", gateErr)
	}
	msg := gateErr.Error()
	for _, frag := range []string{"REGRESSION", scGreedy, "counters.dijkstra_runs", "+100.0%"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("gate error missing %q:\n%s", frag, msg)
		}
	}
}
