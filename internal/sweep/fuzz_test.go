package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"msc/internal/telemetry"
)

// fixtureBytes loads a testdata file as a fuzz seed.
func fixtureBytes(f *testing.F, name string) []byte {
	f.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzAggregate drives the whole ingest path on hostile bytes: JSONL
// parsing/validation, run-record extraction, aggregation, and the
// canonical encode/decode round trip. Malformed and truncated streams
// must surface as typed errors, never as panics; streams that do parse
// must aggregate into a trajectory whose canonical encoding re-decodes.
func FuzzAggregate(f *testing.F) {
	f.Add(fixtureBytes(f, "place_greedy_k2_seed1.jsonl"), int64(1))
	f.Add(fixtureBytes(f, "bench_table1_seed1.jsonl"), int64(7))
	f.Add([]byte(`{"event":"run"}`), int64(0))
	f.Add([]byte("not json at all\n\n{"), int64(3))
	f.Add([]byte{}, int64(2))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		recs, err := telemetry.ReadRunRecords(bytes.NewReader(data))
		if err != nil {
			return // typed rejection is the contract for mangled streams
		}
		sc := Scenario{
			Kind: KindPlace, Family: "rgg", N: 40, M: 8, Pt: 0.12, K: 2,
			Solver: "greedy", DistBackend: "auto", EvalMode: "auto", Par: 1, Seed: seed,
		}
		results := make([]Result, 0, len(recs))
		for i, rec := range recs {
			s := sc
			s.Seed = seed + int64(i) // distinct seeds: duplicates are an Aggregate error by design
			results = append(results, Result{Scenario: s, Record: rec})
		}
		traj, err := Aggregate("fuzz", results)
		if err != nil {
			if _, ok := err.(*AggregateError); !ok {
				t.Fatalf("Aggregate returned untyped error %T: %v", err, err)
			}
			return
		}
		data1, err := traj.Encode()
		if err != nil {
			t.Fatalf("canonical encode failed on aggregated trajectory: %v", err)
		}
		back, err := DecodeTrajectory(data1)
		if err != nil {
			t.Fatalf("canonical encoding does not re-decode: %v\n%s", err, data1)
		}
		data2, err := back.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data1, data2) {
			t.Fatalf("encode → decode → encode unstable:\n%s\nvs\n%s", data1, data2)
		}
	})
}

// FuzzTrajectoryDiff throws hand-mangled trajectory documents at the
// decoder and the differ: any pair of inputs either fails decoding with
// a typed error or diffs without panicking, in both directions, and the
// report always formats.
func FuzzTrajectoryDiff(f *testing.F) {
	canonical := func() []byte {
		t := synthTrajectory(map[string]map[string]float64{
			"place/rgg/n40/m8/pt0.12/k2/greedy/auto/auto/par1": {
				"wall_ms": 100, "sigma": 10, "counters.dijkstra_runs": 4000,
			},
		})
		data, err := t.Encode()
		if err != nil {
			f.Fatal(err)
		}
		return data
	}()
	f.Add(canonical, canonical)
	f.Add(canonical, bytes.Replace(canonical, []byte(`"median": 4000`), []byte(`"median": 6000`), 1))
	f.Add(canonical, bytes.Replace(canonical, []byte(`"schema_version": 1`), []byte(`"schema_version": 2`), 1))
	f.Add(canonical, canonical[:len(canonical)/2])
	f.Add([]byte(`{"schema_version":1,"scenarios":{"x":{"runs":1,"seeds":[1],"metrics":{"sigma":{"median":1e308,"iqr":0,"min":0,"max":1e308}}}}}`), canonical)
	f.Add([]byte{}, []byte("null"))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ta, errA := DecodeTrajectory(a)
		if errA != nil {
			if _, ok := errA.(*TrajectoryError); !ok {
				t.Fatalf("decode returned untyped error %T: %v", errA, errA)
			}
		}
		tb, errB := DecodeTrajectory(b)
		if errB != nil {
			if _, ok := errB.(*TrajectoryError); !ok {
				t.Fatalf("decode returned untyped error %T: %v", errB, errB)
			}
		}
		if errA != nil || errB != nil {
			return
		}
		for _, pair := range [][2]*Trajectory{{ta, tb}, {tb, ta}} {
			report, err := Diff(pair[0], pair[1], DefaultDiffOptions())
			if err != nil {
				if _, ok := err.(*TrajectoryError); !ok {
					t.Fatalf("Diff returned untyped error %T: %v", err, err)
				}
				continue
			}
			_ = report.Format()
			_ = report.Gate()
		}
	})
}
