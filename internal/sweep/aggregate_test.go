package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"msc/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureResult ingests one testdata JSONL fixture exactly the way the
// process runner does — full-stream schema validation, then the single
// matching run record.
func fixtureResult(t *testing.T, name string, sc Scenario, pick func(telemetry.RunRecord) bool) Result {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadRunRecords(f)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var picked []telemetry.RunRecord
	for _, r := range recs {
		if pick(r) {
			picked = append(picked, r)
		}
	}
	if len(picked) != 1 {
		t.Fatalf("%s: %d matching run records, want 1", name, len(picked))
	}
	return Result{Scenario: sc, Record: picked[0]}
}

// goldenResults are the fixed inputs of the golden aggregation: two seeds
// of one place scenario plus one bench scenario.
func goldenResults(t *testing.T) []Result {
	t.Helper()
	place := Scenario{
		Kind: KindPlace, Family: "rgg", N: 40, M: 8, Pt: 0.12, K: 2,
		Solver: "greedy", DistBackend: "auto", EvalMode: "auto", Par: 1, Quick: true,
	}
	isGreedy := func(r telemetry.RunRecord) bool { return r.Name == "greedy" }
	isExp := func(r telemetry.RunRecord) bool { return r.Algorithm == "experiment" && r.Name == "table1" }
	s1, s2 := place, place
	s1.Seed = 1
	s2.Seed = 2
	bench := Scenario{Kind: KindBench, Experiment: "table1", DistBackend: "auto", EvalMode: "auto", Par: 1, Quick: true, Seed: 1}
	return []Result{
		fixtureResult(t, "place_greedy_k2_seed1.jsonl", s1, isGreedy),
		fixtureResult(t, "place_greedy_k2_seed2.jsonl", s2, isGreedy),
		fixtureResult(t, "bench_table1_seed1.jsonl", bench, isExp),
	}
}

// TestAggregateGolden locks the trajectory format byte for byte: fixed
// JSONL fixtures must aggregate to exactly the committed golden file
// (sorted keys, fixed float formatting). Any intentional format change
// must regenerate the golden with -update and show up in review.
func TestAggregateGolden(t *testing.T) {
	traj, err := Aggregate("golden", goldenResults(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := traj.Encode()
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "BENCH_golden.json")
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trajectory drifted from golden (rerun with -update if intentional)\n--- got:\n%s\n--- want:\n%s", got, want)
	}

	// And the canonical encoding round-trips losslessly.
	decoded, err := DecodeTrajectory(got)
	if err != nil {
		t.Fatal(err)
	}
	again, err := decoded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Fatal("encode → decode → encode is not byte-stable")
	}
}

func TestAggregateStatistics(t *testing.T) {
	traj, err := Aggregate("h", goldenResults(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Scenarios) != 2 {
		t.Fatalf("%d scenarios, want 2", len(traj.Scenarios))
	}
	place := traj.Scenarios["place/rgg/n40/m8/pt0.12/k2/greedy/auto/auto/par1"]
	if place.Runs != 2 || len(place.Seeds) != 2 || place.Seeds[0] != 1 || place.Seeds[1] != 2 {
		t.Fatalf("place scenario stats wrong: %+v", place)
	}
	sigma, ok := place.Metrics["sigma"]
	if !ok {
		t.Fatal("sigma metric missing")
	}
	if sigma.Median < sigma.Min || sigma.Median > sigma.Max {
		t.Fatalf("median outside [min,max]: %+v", sigma)
	}
	if _, ok := place.Metrics["counters.dijkstra_runs"]; !ok {
		t.Fatalf("counter metrics missing: %v", place.Metrics)
	}
	bench := traj.Scenarios["bench/table1/quick/auto/auto/par1"]
	if bench.Runs != 1 || bench.Metrics["sigma"].Median != -1 {
		t.Fatalf("bench scenario stats wrong: %+v", bench)
	}
	// Two-seed IQR equals the full spread.
	wall := place.Metrics["wall_ms"]
	if wall.IQR != round3(wall.Max-wall.Min) {
		t.Fatalf("two-sample IQR should equal max-min: %+v", wall)
	}
}

func TestAggregateTypedErrors(t *testing.T) {
	results := goldenResults(t)
	for name, mutate := range map[string]func() []Result{
		"empty": func() []Result { return nil },
		"failed run": func() []Result {
			rs := append([]Result(nil), results...)
			rs[1].Err = os.ErrDeadlineExceeded
			return rs
		},
		"duplicate seed": func() []Result {
			rs := append([]Result(nil), results...)
			rs[1] = rs[0]
			return rs
		},
	} {
		_, err := Aggregate("h", mutate())
		if _, ok := err.(*AggregateError); !ok {
			t.Errorf("%s: got %v (%T), want *AggregateError", name, err, err)
		}
	}
}

func TestDecodeTrajectoryTypedErrors(t *testing.T) {
	good, err := Aggregate("h", goldenResults(t))
	if err != nil {
		t.Fatal(err)
	}
	data, err := good.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"not json":      "not json at all",
		"wrong version": strings.Replace(string(data), `"schema_version": 1`, `"schema_version": 99`, 1),
		"unknown field": strings.Replace(string(data), `"tool"`, `"tooool"`, 1),
		"trailing data": string(data) + "{}",
		"no scenarios":  `{"schema_version":1,"tool":"mscsweep","host":"h","scenarios":{}}`,
		"zero runs":     `{"schema_version":1,"tool":"mscsweep","host":"h","scenarios":{"x":{"runs":0,"seeds":[],"metrics":{"m":{"median":1,"iqr":0,"min":1,"max":1}}}}}`,
		"seed mismatch": `{"schema_version":1,"tool":"mscsweep","host":"h","scenarios":{"x":{"runs":2,"seeds":[1],"metrics":{"m":{"median":1,"iqr":0,"min":1,"max":1}}}}}`,
		"no metrics":    `{"schema_version":1,"tool":"mscsweep","host":"h","scenarios":{"x":{"runs":1,"seeds":[1],"metrics":{}}}}`,
	}
	for name, doc := range cases {
		if _, err := DecodeTrajectory([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if _, ok := err.(*TrajectoryError); !ok {
			t.Errorf("%s: got %T, want *TrajectoryError", name, err)
		}
	}
	if _, err := DecodeTrajectory(data); err != nil {
		t.Fatalf("canonical document rejected: %v", err)
	}
}
