package dynamic

import (
	"errors"
	"math"
	"testing"

	"msc/internal/core"
	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/xrand"
)

// seriesInstances builds T random instances over a shared node universe.
func seriesInstances(t *testing.T, n, m, k, T int, dt float64, seed int64) []*core.Instance {
	t.Helper()
	rng := xrand.New(seed)
	insts := make([]*core.Instance, 0, T)
	for i := 0; i < T; i++ {
		b := graph.NewBuilder(n)
		perm := rng.Perm(n)
		for j := 1; j < n; j++ {
			b.AddEdge(graph.NodeID(perm[j]), graph.NodeID(perm[rng.Intn(j)]), 0.1+rng.Float64())
		}
		for e := 0; e < 2*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		var ps []pairs.Pair
		seen := map[pairs.Pair]bool{}
		for len(ps) < m {
			p := pairs.New(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
			if p.U == p.W || seen[p] {
				continue
			}
			seen[p] = true
			ps = append(ps, p)
		}
		pset, err := pairs.NewSet(n, ps)
		if err != nil {
			t.Fatal(err)
		}
		thr := failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}
		inst, err := core.NewInstance(g, pset, thr, k, &core.Options{AllowTrivial: true})
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
	}
	return insts
}

func TestNewProblemValidation(t *testing.T) {
	if _, err := NewProblem(nil); !errors.Is(err, ErrNoInstances) {
		t.Fatalf("err = %v", err)
	}
	a := seriesInstances(t, 10, 4, 2, 1, 0.7, 1)
	b := seriesInstances(t, 12, 4, 2, 1, 0.7, 2)
	if _, err := NewProblem([]*core.Instance{a[0], b[0]}); !errors.Is(err, ErrNodeUniv) {
		t.Fatalf("err = %v", err)
	}
	c := seriesInstances(t, 10, 4, 3, 1, 0.7, 3)
	if _, err := NewProblem([]*core.Instance{a[0], c[0]}); !errors.Is(err, ErrBudgets) {
		t.Fatalf("err = %v", err)
	}
}

func TestSigmaSumsPerInstance(t *testing.T) {
	insts := seriesInstances(t, 12, 5, 2, 4, 0.8, 5)
	prob, err := NewProblem(insts)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(9)
	for rep := 0; rep < 20; rep++ {
		sel := rng.SampleDistinct(prob.NumCandidates(), rng.Intn(4))
		want := 0
		for _, inst := range insts {
			want += inst.Sigma(sel)
		}
		if got := prob.Sigma(sel); got != want {
			t.Fatalf("Sigma(%v) = %d, want %d", sel, got, want)
		}
		per := prob.SigmaPerInstance(sel)
		sum := 0
		for _, s := range per {
			sum += s
		}
		if sum != want {
			t.Fatalf("per-instance sum %d != %d", sum, want)
		}
	}
}

func TestBoundsSandwichSigma(t *testing.T) {
	insts := seriesInstances(t, 12, 5, 2, 3, 0.8, 7)
	prob, err := NewProblem(insts)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11)
	for rep := 0; rep < 20; rep++ {
		sel := rng.SampleDistinct(prob.NumCandidates(), rng.Intn(4))
		sigma := float64(prob.Sigma(sel))
		if mu := prob.Mu(sel); mu > sigma+1e-9 {
			t.Fatalf("μ=%v > σ=%v", mu, sigma)
		}
		if nu := prob.Nu(sel); nu < sigma-1e-9 {
			t.Fatalf("ν=%v < σ=%v", nu, sigma)
		}
	}
}

func TestSearchMatchesDirectEvaluation(t *testing.T) {
	insts := seriesInstances(t, 11, 4, 3, 3, 0.8, 13)
	prob, err := NewProblem(insts)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(17)
	sel := rng.SampleDistinct(prob.NumCandidates(), 2)
	s := prob.NewSearch(sel)
	if s.Sigma() != prob.Sigma(sel) {
		t.Fatalf("search σ %d != %d", s.Sigma(), prob.Sigma(sel))
	}
	// GainAdd and GainsAdd agree with direct evaluation.
	gains := s.GainsAdd()
	for c := 0; c < prob.NumCandidates(); c += 5 {
		want := prob.Sigma(append(append([]int(nil), sel...), c)) - prob.Sigma(sel)
		if got := s.GainAdd(c); got != want {
			t.Fatalf("GainAdd(%d) = %d, want %d", c, got, want)
		}
		if gains[c] != want {
			t.Fatalf("GainsAdd[%d] = %d, want %d", c, gains[c], want)
		}
	}
	// BestAdd matches argmax over GainsAdd.
	cand, gain := s.BestAdd()
	bestC, bestG := 0, gains[0]
	for c := 1; c < len(gains); c++ {
		if gains[c] > bestG {
			bestC, bestG = c, gains[c]
		}
	}
	if cand != bestC || gain != bestG {
		t.Fatalf("BestAdd = (%d, %d), want (%d, %d)", cand, gain, bestC, bestG)
	}
	// Mutations keep the state consistent.
	s.Add(cand)
	if s.Sigma() != prob.Sigma(s.Selection()) {
		t.Fatal("state inconsistent after Add")
	}
	pos, want := s.BestDrop()
	if got := s.SigmaDrop(pos); got != want {
		t.Fatalf("BestDrop σ=%d, SigmaDrop=%d", want, got)
	}
	s.RemoveAt(pos)
	if s.Sigma() != prob.Sigma(s.Selection()) {
		t.Fatal("state inconsistent after RemoveAt")
	}
}

func TestAlgorithmsRunOnDynamicProblem(t *testing.T) {
	insts := seriesInstances(t, 12, 5, 2, 3, 0.9, 23)
	prob, err := NewProblem(insts)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(31)
	res := core.Sandwich(prob)
	if res.Best.Sigma < prob.Sigma(nil) {
		t.Fatal("sandwich below baseline")
	}
	if len(res.Best.Edges) > prob.K() {
		t.Fatal("budget violated")
	}
	ea := core.EA(prob, core.EAOptions{Iterations: 100}, rng)
	if len(ea.Best.Edges) > prob.K() {
		t.Fatal("EA budget violated")
	}
	aea := core.AEA(prob, core.AEAOptions{Iterations: 60, PopSize: 4, Delta: 0.1}, rng)
	if len(aea.Best.Edges) != prob.K() {
		t.Fatal("AEA must return exactly k edges")
	}
	// Monotone in T: adding an instance cannot reduce the same
	// placement's total σ.
	sub, err := NewProblem(insts[:2])
	if err != nil {
		t.Fatal(err)
	}
	if prob.Sigma(res.Best.Selection) < sub.Sigma(res.Best.Selection) {
		t.Fatal("total σ decreased when adding a time instance")
	}
}

func TestCandidateMappingSharedAcrossInstances(t *testing.T) {
	insts := seriesInstances(t, 10, 4, 2, 2, 0.8, 37)
	prob, err := NewProblem(insts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < prob.NumCandidates(); i += 7 {
		e := prob.CandidateEdge(i)
		if back := prob.CandidateIndex(e); back != i {
			t.Fatalf("mapping roundtrip %d -> %v -> %d", i, e, back)
		}
	}
	if prob.T() != 2 || prob.N() != 10 || prob.K() != 2 {
		t.Fatal("metadata wrong")
	}
	if prob.MaxSigma() != 8 {
		t.Fatalf("MaxSigma = %d, want 8", prob.MaxSigma())
	}
}
