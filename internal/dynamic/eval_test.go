package dynamic

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"msc/internal/core"
	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// evalSeries builds the same T-instance series twice — once evaluated
// incrementally, once by full rebuilds — from one RNG stream, so both
// series share graphs, pairs, and budgets exactly.
func evalSeries(t *testing.T, n, m, k, T int, dt float64, seed int64) (inc, reb []*core.Instance) {
	t.Helper()
	rng := xrand.New(seed)
	for i := 0; i < T; i++ {
		b := graph.NewBuilder(n)
		perm := rng.Perm(n)
		for j := 1; j < n; j++ {
			b.AddEdge(graph.NodeID(perm[j]), graph.NodeID(perm[rng.Intn(j)]), 0.1+rng.Float64())
		}
		for e := 0; e < 2*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		var ps []pairs.Pair
		seen := map[pairs.Pair]bool{}
		for len(ps) < m {
			p := pairs.New(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
			if p.U == p.W || seen[p] {
				continue
			}
			seen[p] = true
			ps = append(ps, p)
		}
		pset, err := pairs.NewSet(n, ps)
		if err != nil {
			t.Fatal(err)
		}
		thr := failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}
		ii, err := core.NewInstance(g, pset, thr, k, &core.Options{AllowTrivial: true, EvalMode: core.EvalIncremental})
		if err != nil {
			t.Fatal(err)
		}
		ri, err := core.NewInstance(g, pset, thr, k, &core.Options{AllowTrivial: true, EvalMode: core.EvalRebuild})
		if err != nil {
			t.Fatal(err)
		}
		inc = append(inc, ii)
		reb = append(reb, ri)
	}
	return inc, reb
}

// evalSink collects RoundEvents so the test can check the multi-instance
// EvalStats aggregation reaches the trace layer.
type evalSink struct{ rounds []telemetry.RoundEvent }

func (s *evalSink) Emit(e telemetry.Event) {
	if r, ok := e.(telemetry.RoundEvent); ok {
		s.rounds = append(s.rounds, r)
	}
}

// TestDynamicEvalDifferential runs the dynamic problem's solvers over
// incrementally evaluated and rebuild-evaluated instance series: identical
// placements, per-instance σ breakdowns, and sandwich bounds, serial and
// parallel. It also checks that the per-round eval stats summed over the
// per-instance sub-searches reach GreedySigma's trace.
func TestDynamicEvalDifferential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			incInsts, rebInsts := evalSeries(t, 12, 5, 3, 3, 0.8, 9850+seed)
			iprob, err := NewProblem(incInsts)
			if err != nil {
				t.Fatal(err)
			}
			rprob, err := NewProblem(rebInsts)
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 8} {
				ipl := core.GreedySigma(iprob, core.Parallelism(workers))
				rpl := core.GreedySigma(rprob, core.Parallelism(workers))
				if ipl.Sigma != rpl.Sigma || !reflect.DeepEqual(ipl.Selection, rpl.Selection) {
					t.Errorf("par %d: GreedySigma differs: incremental (σ=%d, %v), rebuild (σ=%d, %v)",
						workers, ipl.Sigma, ipl.Selection, rpl.Sigma, rpl.Selection)
				}
				if !reflect.DeepEqual(iprob.SigmaPerInstance(ipl.Selection), rprob.SigmaPerInstance(rpl.Selection)) {
					t.Errorf("par %d: per-instance σ breakdown differs", workers)
				}

				ires := core.Sandwich(iprob, core.Parallelism(workers))
				rres := core.Sandwich(rprob, core.Parallelism(workers))
				if ires.Best.Sigma != rres.Best.Sigma || !reflect.DeepEqual(ires.Best.Selection, rres.Best.Selection) {
					t.Errorf("par %d: Sandwich.Best differs", workers)
				}
				if ires.Ratio != rres.Ratio {
					t.Errorf("par %d: sandwich ratio differs: incremental %v, rebuild %v", workers, ires.Ratio, rres.Ratio)
				}
			}

			sink := &evalSink{}
			pl := core.GreedySigma(iprob, core.WithSink(sink))
			if len(pl.Selection) > 0 {
				var merged int64
				for _, ev := range sink.rounds {
					merged += ev.RowsMerged + ev.RowsUnchanged
				}
				if merged == 0 {
					t.Error("dynamic greedy rounds report no merged/unchanged rows despite incremental subs")
				}
			}
		})
	}
}
