package dynamic

import (
	"fmt"
	"reflect"
	"testing"

	"msc/internal/core"
	"msc/internal/xrand"
)

// The dynamic problem must honor the same determinism contract as the
// single-topology instance: the sharded scans (over time instances here,
// over candidate rows inside each instance) produce placements identical
// to the serial code path for every worker count.

func newTestProblem(t *testing.T, seed int64) *Problem {
	t.Helper()
	p, err := NewProblem(seriesInstances(t, 12, 5, 3, 4, 0.9, seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSigmaParMatchesSigma(t *testing.T) {
	p := newTestProblem(t, 51)
	rng := xrand.New(51)
	for rep := 0; rep < 20; rep++ {
		sel := rng.SampleDistinct(p.NumCandidates(), 1+rng.Intn(3))
		want := p.Sigma(sel)
		for _, workers := range []int{1, 2, 3, 8} {
			if got := p.SigmaPar(sel, workers); got != want {
				t.Fatalf("SigmaPar(%v, %d) = %d, want %d", sel, workers, got, want)
			}
		}
	}
}

func TestMultiSearchShardedScansMatchSerial(t *testing.T) {
	p := newTestProblem(t, 52)
	rng := xrand.New(52)
	for rep := 0; rep < 5; rep++ {
		sel := rng.SampleDistinct(p.NumCandidates(), 1+rep%3)
		serial := p.NewSearch(sel)
		wantGains := append([]int(nil), serial.GainsAdd()...)
		wantDrops := make([]int, len(sel))
		for pos := range sel {
			wantDrops[pos] = serial.SigmaDrop(pos)
		}
		for _, workers := range []int{2, 3, 8} {
			s := p.NewSearch(sel).(core.ParallelSearch)
			s.SetWorkers(workers)
			if got := append([]int(nil), s.GainsAdd()...); !reflect.DeepEqual(got, wantGains) {
				t.Fatalf("rep %d, %d workers: sharded GainsAdd differs from serial", rep, workers)
			}
			if got := append([]int(nil), s.SigmaDrops()...); !reflect.DeepEqual(got, wantDrops) {
				t.Fatalf("rep %d, %d workers: SigmaDrops = %v, want %v", rep, workers, got, wantDrops)
			}
		}
	}
}

func TestDynamicSerialParallelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := newTestProblem(t, 60+seed)

			serial := core.GreedySigma(p, core.Parallelism(1))
			par := core.GreedySigma(p, core.Parallelism(8))
			if serial.Sigma != par.Sigma || !reflect.DeepEqual(serial.Selection, par.Selection) {
				t.Errorf("GreedySigma differs: serial (%v, σ %d), parallel (%v, σ %d)",
					serial.Selection, serial.Sigma, par.Selection, par.Sigma)
			}

			opts := core.AEAOptions{Iterations: 30, PopSize: 4, Delta: 0.05, Parallelism: 1}
			aeaSerial := core.AEA(p, opts, xrand.New(seed))
			opts.Parallelism = 8
			aeaPar := core.AEA(p, opts, xrand.New(seed))
			if aeaSerial.Best.Sigma != aeaPar.Best.Sigma ||
				!reflect.DeepEqual(aeaSerial.Best.Selection, aeaPar.Best.Selection) {
				t.Errorf("AEA differs: serial (%v, σ %d), parallel (%v, σ %d)",
					aeaSerial.Best.Selection, aeaSerial.Best.Sigma,
					aeaPar.Best.Selection, aeaPar.Best.Sigma)
			}

			rndSerial, serr := core.RandomPlacement(p, 20, xrand.New(seed), core.Parallelism(1))
			rndPar, perr := core.RandomPlacement(p, 20, xrand.New(seed), core.Parallelism(8))
			if serr != nil || perr != nil {
				t.Fatalf("RandomPlacement: serial err %v, parallel err %v", serr, perr)
			}
			if rndSerial.Sigma != rndPar.Sigma || !reflect.DeepEqual(rndSerial.Selection, rndPar.Selection) {
				t.Errorf("RandomPlacement differs: serial (%v, σ %d), parallel (%v, σ %d)",
					rndSerial.Selection, rndSerial.Sigma, rndPar.Selection, rndPar.Sigma)
			}
		})
	}
}
