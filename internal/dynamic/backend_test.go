package dynamic

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"msc/internal/core"
	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/xrand"
)

// backendSeries builds the same T-instance series twice — once on the dense
// backend, once on the lazy backend — from one RNG stream, so both series
// share graphs, pairs, and budgets exactly.
func backendSeries(t *testing.T, n, m, k, T int, dt float64, seed int64) (dense, lazy []*core.Instance) {
	t.Helper()
	rng := xrand.New(seed)
	for i := 0; i < T; i++ {
		b := graph.NewBuilder(n)
		perm := rng.Perm(n)
		for j := 1; j < n; j++ {
			b.AddEdge(graph.NodeID(perm[j]), graph.NodeID(perm[rng.Intn(j)]), 0.1+rng.Float64())
		}
		for e := 0; e < 2*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		var ps []pairs.Pair
		seen := map[pairs.Pair]bool{}
		for len(ps) < m {
			p := pairs.New(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
			if p.U == p.W || seen[p] {
				continue
			}
			seen[p] = true
			ps = append(ps, p)
		}
		pset, err := pairs.NewSet(n, ps)
		if err != nil {
			t.Fatal(err)
		}
		thr := failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}
		di, err := core.NewInstance(g, pset, thr, k, &core.Options{AllowTrivial: true, DistBackend: core.BackendDense})
		if err != nil {
			t.Fatal(err)
		}
		li, err := core.NewInstance(g, pset, thr, k, &core.Options{AllowTrivial: true, DistBackend: core.BackendLazy})
		if err != nil {
			t.Fatal(err)
		}
		dense = append(dense, di)
		lazy = append(lazy, li)
	}
	return dense, lazy
}

// TestDynamicBackendDifferential runs the dynamic problem's solvers over
// dense- and lazy-backed instance series: identical placements, per-instance
// σ breakdowns, and sandwich bounds, serial and parallel.
func TestDynamicBackendDifferential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			denseInsts, lazyInsts := backendSeries(t, 12, 5, 3, 3, 0.8, 9600+seed)
			dprob, err := NewProblem(denseInsts)
			if err != nil {
				t.Fatal(err)
			}
			lprob, err := NewProblem(lazyInsts)
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 8} {
				dpl := core.GreedySigma(dprob, core.Parallelism(workers))
				lpl := core.GreedySigma(lprob, core.Parallelism(workers))
				if dpl.Sigma != lpl.Sigma || !reflect.DeepEqual(dpl.Selection, lpl.Selection) {
					t.Errorf("par %d: GreedySigma differs: dense (σ=%d, %v), lazy (σ=%d, %v)",
						workers, dpl.Sigma, dpl.Selection, lpl.Sigma, lpl.Selection)
				}
				if !reflect.DeepEqual(dprob.SigmaPerInstance(dpl.Selection), lprob.SigmaPerInstance(lpl.Selection)) {
					t.Errorf("par %d: per-instance σ breakdown differs", workers)
				}

				dres := core.Sandwich(dprob, core.Parallelism(workers))
				lres := core.Sandwich(lprob, core.Parallelism(workers))
				if dres.Best.Sigma != lres.Best.Sigma || !reflect.DeepEqual(dres.Best.Selection, lres.Best.Selection) {
					t.Errorf("par %d: Sandwich.Best differs", workers)
				}
				if dres.Ratio != lres.Ratio {
					t.Errorf("par %d: sandwich ratio differs: dense %v, lazy %v", workers, dres.Ratio, lres.Ratio)
				}
			}

			r := xrand.New(9700 + seed)
			for rep := 0; rep < 6; rep++ {
				sel := r.SampleDistinct(dprob.NumCandidates(), 1+r.Intn(3))
				if ds, ls := dprob.Sigma(sel), lprob.Sigma(sel); ds != ls {
					t.Fatalf("dynamic σ(%v): dense %d, lazy %d", sel, ds, ls)
				}
				if dm, lm := dprob.Mu(sel), lprob.Mu(sel); dm != lm {
					t.Fatalf("dynamic μ(%v): dense %v, lazy %v", sel, dm, lm)
				}
				if dn, ln := dprob.Nu(sel), lprob.Nu(sel); dn != ln {
					t.Fatalf("dynamic ν(%v): dense %v, lazy %v", sel, dn, ln)
				}
			}
		})
	}
}
