// Package dynamic extends the MSC problem to dynamic networks (paper §VI).
//
// A dynamic network is a series of topologies G_1..G_T over a fixed node
// universe, each with its own edge set, important-pair set, and threshold
// (link conditions, topology, and pair importance all may change between
// time instances). One shortcut placement F is chosen for the whole series;
// the objective becomes σ(F) = Σ_i σ_i(F), the total number of maintained
// social connections across all time instances. The bounds extend as sums,
// μ = Σ μ_i and ν = Σ ν_i, which stay submodular and keep sandwiching σ —
// so every algorithm in internal/core applies unchanged through the shared
// Problem interface.
package dynamic

import (
	"context"
	"errors"
	"fmt"
	"time"

	"msc/internal/bitset"
	"msc/internal/core"
	"msc/internal/graph"
	"msc/internal/maxcover"
	"msc/internal/telemetry"
)

// Errors returned by NewProblem.
var (
	ErrNoInstances = errors.New("dynamic: need at least one time instance")
	ErrNodeUniv    = errors.New("dynamic: instances must share a node universe")
	ErrBudgets     = errors.New("dynamic: instances must share the budget k")
)

// Problem is a dynamic MSC problem: one placement evaluated against T time
// instances. It implements core.Problem.
type Problem struct {
	insts []*core.Instance
	n     int
	k     int
	sink  telemetry.Sink
}

var (
	_ core.Problem       = (*Problem)(nil)
	_ core.ParallelSigma = (*Problem)(nil)
)

// NewProblem bundles per-time-instance MSC instances into a dynamic
// problem. All instances must share the node count and budget.
func NewProblem(insts []*core.Instance) (*Problem, error) {
	if len(insts) == 0 {
		return nil, ErrNoInstances
	}
	n := insts[0].N()
	k := insts[0].K()
	for i, inst := range insts {
		if inst.N() != n {
			return nil, fmt.Errorf("%w: instance %d has %d nodes, want %d", ErrNodeUniv, i, inst.N(), n)
		}
		if inst.K() != k {
			return nil, fmt.Errorf("%w: instance %d has k=%d, want %d", ErrBudgets, i, inst.K(), k)
		}
	}
	return &Problem{insts: insts, n: n, k: k}, nil
}

// SetSink attaches a telemetry sink: every search derived from the problem
// afterwards emits one DynamicStepEvent per committed shortcut, carrying the
// per-time-instance σ split. A nil sink (the default) emits nothing; the
// solver path is identical either way.
func (p *Problem) SetSink(s telemetry.Sink) { p.sink = s }

// T returns the number of time instances.
func (p *Problem) T() int { return len(p.insts) }

// Instances returns the per-time-instance problems. Callers must not
// modify the slice.
func (p *Problem) Instances() []*core.Instance { return p.insts }

// N returns the (shared) node count.
func (p *Problem) N() int { return p.n }

// K returns the (shared) shortcut budget.
func (p *Problem) K() int { return p.k }

// NumCandidates returns n(n−1)/2: shortcut endpoints persist across time.
func (p *Problem) NumCandidates() int { return p.insts[0].NumCandidates() }

// CandidateEdge maps a candidate index to its edge.
func (p *Problem) CandidateEdge(i int) graph.Edge { return p.insts[0].CandidateEdge(i) }

// CandidateIndex maps an edge to its candidate index.
func (p *Problem) CandidateIndex(e graph.Edge) int { return p.insts[0].CandidateIndex(e) }

// MaxSigma returns Σ_i m_i.
func (p *Problem) MaxSigma() int {
	total := 0
	for _, inst := range p.insts {
		total += inst.MaxSigma()
	}
	return total
}

// Sigma returns Σ_i σ_i(sel). The dynamic-level evaluation counts as one
// SigmaEval on top of the T per-instance evaluations it triggers.
func (p *Problem) Sigma(sel []int) int {
	telemetry.Global().SigmaEvals.Add(1)
	total := 0
	for _, inst := range p.insts {
		total += inst.Sigma(sel)
	}
	return total
}

// SigmaPar is Sigma with the per-instance evaluations sharded across
// workers (instances are immutable, so the evaluations are independent);
// the per-shard totals reduce serially in instance order, so
// SigmaPar(sel, w) == Sigma(sel) for every worker count.
func (p *Problem) SigmaPar(sel []int, workers int) int {
	if workers <= 1 || len(p.insts) == 1 {
		return p.Sigma(sel)
	}
	// Counted symmetrically with the delegating branch above: one
	// dynamic-level eval plus T per-instance evals, so totals match at
	// every worker count.
	telemetry.Global().SigmaEvals.Add(1)
	totals := make([]int, len(p.insts))
	core.ParallelFor(workers, len(p.insts), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			totals[i] = p.insts[i].Sigma(sel)
		}
	})
	total := 0
	for _, t := range totals {
		total += t
	}
	return total
}

// SigmaPerInstance returns the per-time-instance σ values (Fig. 5 reports
// both the total and its growth with T).
func (p *Problem) SigmaPerInstance(sel []int) []int {
	out := make([]int, len(p.insts))
	for i, inst := range p.insts {
		out[i] = inst.Sigma(sel)
	}
	return out
}

// Mu returns Σ_i μ_i(sel); a sum of submodular functions is submodular.
func (p *Problem) Mu(sel []int) float64 {
	total := 0.0
	for _, inst := range p.insts {
		total += inst.Mu(sel)
	}
	return total
}

// Nu returns Σ_i ν_i(sel).
func (p *Problem) Nu(sel []int) float64 {
	total := 0.0
	for _, inst := range p.insts {
		total += inst.Nu(sel)
	}
	return total
}

// BoundsTractable reports whether every snapshot can materialize its μ/ν
// coverage structures; the snapshots share one candidate universe, so the
// first answers for all.
func (p *Problem) BoundsTractable() bool { return p.insts[0].BoundsTractable() }

// MuProblem concatenates the per-instance μ coverage universes: element
// (i, pair j) lives at offset_i + j, and candidate c's set is the union of
// its per-instance sets.
func (p *Problem) MuProblem() maxcover.Problem {
	subs := make([]maxcover.Problem, len(p.insts))
	for i, inst := range p.insts {
		subs[i] = inst.MuProblem()
	}
	return concatCoverage(subs, p.NumCandidates(), p.k)
}

// NuProblem concatenates the per-instance ν weighted coverage universes.
func (p *Problem) NuProblem() maxcover.Problem {
	subs := make([]maxcover.Problem, len(p.insts))
	for i, inst := range p.insts {
		subs[i] = inst.NuProblem()
	}
	return concatCoverage(subs, p.NumCandidates(), p.k)
}

// concatCoverage merges per-instance coverage problems over the same
// candidate family into one problem whose universe is the disjoint union.
func concatCoverage(subs []maxcover.Problem, numCand, k int) maxcover.Problem {
	totalU := 0
	offsets := make([]int, len(subs))
	weighted := false
	hasInitial := false
	for i, sub := range subs {
		offsets[i] = totalU
		totalU += subUniverse(sub)
		if sub.Weights != nil {
			weighted = true
		}
		if sub.Initial != nil {
			hasInitial = true
		}
	}
	out := maxcover.Problem{K: k, Sets: make([]*bitset.Set, numCand)}
	if weighted {
		out.Weights = make([]float64, totalU)
		for i, sub := range subs {
			off := offsets[i]
			if sub.Weights != nil {
				copy(out.Weights[off:], sub.Weights)
			} else {
				for j := 0; j < subUniverse(sub); j++ {
					out.Weights[off+j] = 1
				}
			}
		}
	}
	if hasInitial {
		init := bitset.New(totalU)
		for i, sub := range subs {
			if sub.Initial == nil {
				continue
			}
			off := offsets[i]
			sub.Initial.ForEach(func(j int) { init.Add(off + j) })
		}
		out.Initial = init
	}
	for c := 0; c < numCand; c++ {
		s := bitset.New(totalU)
		for i, sub := range subs {
			off := offsets[i]
			sub.Sets[c].ForEach(func(j int) { s.Add(off + j) })
		}
		out.Sets[c] = s
	}
	return out
}

func subUniverse(p maxcover.Problem) int {
	if len(p.Sets) > 0 {
		return p.Sets[0].Len()
	}
	if p.Initial != nil {
		return p.Initial.Len()
	}
	return len(p.Weights)
}

// NewSearch returns an incremental evaluator whose gains are summed across
// time instances.
func (p *Problem) NewSearch(sel []int) core.Search {
	subs := make([]core.Search, len(p.insts))
	for i, inst := range p.insts {
		subs[i] = inst.NewSearch(sel)
	}
	return &multiSearch{prob: p, subs: subs, sel: append([]int(nil), sel...), workers: 1, sink: p.sink}
}

// multiSearch fans Search operations out to per-instance searches. With
// SetWorkers > 1 the fan-out runs the per-instance scans concurrently —
// each sub-search owns its scratch, so they never share mutable state —
// and reduces the per-instance results serially in instance order, keeping
// every scan identical to the serial fan-out.
type multiSearch struct {
	prob    *Problem
	subs    []core.Search
	sel     []int
	workers int            // shard count for scans; 1 = serial
	gains   []int          // scratch for GainsAdd
	drops   []int          // scratch for SigmaDrops
	sink    telemetry.Sink // emits DynamicStepEvents on Add when non-nil

	// Scan timing (core.ScanTimer): per-time-instance wall time of the
	// GainsAdd fan-out, enabled only when a sink is attached upstream.
	timeScan   bool
	instNS     []int64
	scanMinNS  int64
	scanMaxNS  int64
	scanShards int
}

var (
	_ core.ParallelSearch = (*multiSearch)(nil)
	_ core.ScanTimer      = (*multiSearch)(nil)
	_ core.ContextAware   = (*multiSearch)(nil)
	_ core.EvalStats      = (*multiSearch)(nil)
)

// LastEvalStats implements core.EvalStats by draining and summing the
// per-time-instance incremental-evaluation accumulators.
func (s *multiSearch) LastEvalStats() (rowsMerged, rowsUnchanged, pairsRescanned, pairsSkipped int64) {
	for _, sub := range s.subs {
		if es, ok := sub.(core.EvalStats); ok {
			rm, ru, pr, ps := es.LastEvalStats()
			rowsMerged += rm
			rowsUnchanged += ru
			pairsRescanned += pr
			pairsSkipped += ps
		}
	}
	return rowsMerged, rowsUnchanged, pairsRescanned, pairsSkipped
}

// SetContext implements core.ContextAware by forwarding the supervision
// context to every per-instance search, so cancellation interrupts the
// fanned-out candidate scans too.
func (s *multiSearch) SetContext(ctx context.Context) {
	for _, sub := range s.subs {
		if ca, ok := sub.(core.ContextAware); ok {
			ca.SetContext(ctx)
		}
	}
}

// EnableScanTiming turns on per-instance wall-time capture for subsequent
// GainsAdd scans (core.ScanTimer).
func (s *multiSearch) EnableScanTiming(on bool) { s.timeScan = on }

// LastScanShards reports the per-instance wall-time extrema of the most
// recent GainsAdd fan-out; here a "shard" is one time instance, so the
// spread exposes imbalance across topologies rather than across candidate
// blocks.
func (s *multiSearch) LastScanShards() (minNS, maxNS int64, shards int) {
	return s.scanMinNS, s.scanMaxNS, s.scanShards
}

// SetWorkers fixes the shard count for subsequent scans. Workers are spent
// across time instances first; any surplus is pushed down into the
// per-instance candidate scans.
func (s *multiSearch) SetWorkers(n int) {
	s.workers = core.ResolveParallelism(n)
	sub := s.workers / len(s.subs)
	if sub < 1 {
		sub = 1
	}
	for _, ss := range s.subs {
		if ps, ok := ss.(core.ParallelSearch); ok {
			ps.SetWorkers(sub)
		}
	}
}

func (s *multiSearch) Sigma() int {
	total := 0
	for _, sub := range s.subs {
		total += sub.Sigma()
	}
	return total
}

func (s *multiSearch) Selection() []int { return append([]int(nil), s.sel...) }

func (s *multiSearch) Len() int { return len(s.sel) }

func (s *multiSearch) Contains(cand int) bool {
	for _, c := range s.sel {
		if c == cand {
			return true
		}
	}
	return false
}

func (s *multiSearch) GainAdd(cand int) int {
	total := 0
	for _, sub := range s.subs {
		total += sub.GainAdd(cand)
	}
	return total
}

// GainsAdd sums the per-instance gain arrays: each sub-search runs its own
// fused candidate scan (concurrently when workers allow — every sub-search
// writes only its private scratch), and the argmax is taken over the
// totals, summed serially in instance order. The returned slice is scratch
// reused across calls.
func (s *multiSearch) GainsAdd() []int {
	numCand := s.prob.NumCandidates()
	if s.gains == nil {
		s.gains = make([]int, numCand)
	} else {
		for i := range s.gains {
			s.gains[i] = 0
		}
	}
	subGains := make([][]int, len(s.subs))
	if s.timeScan && cap(s.instNS) < len(s.subs) {
		s.instNS = make([]int64, len(s.subs))
	}
	core.ParallelFor(s.workers, len(s.subs), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if s.timeScan {
				start := time.Now()
				subGains[i] = s.subs[i].GainsAdd()
				s.instNS[i] = time.Since(start).Nanoseconds()
				continue
			}
			subGains[i] = s.subs[i].GainsAdd()
		}
	})
	if s.timeScan {
		s.scanShards = len(s.subs)
		s.scanMinNS, s.scanMaxNS = s.instNS[0], s.instNS[0]
		for _, ns := range s.instNS[1:len(s.subs)] {
			if ns < s.scanMinNS {
				s.scanMinNS = ns
			}
			if ns > s.scanMaxNS {
				s.scanMaxNS = ns
			}
		}
	}
	for _, gains := range subGains {
		for c, g := range gains {
			s.gains[c] += g
		}
	}
	return s.gains
}

// BestAdd scans all candidates, summing per-instance gains (ties toward
// the lowest candidate index). On a degenerate problem with an empty
// candidate universe it returns (-1, 0).
func (s *multiSearch) BestAdd() (cand, gain int) {
	gains := s.GainsAdd()
	if len(gains) == 0 {
		return -1, 0
	}
	best, bestGain := 0, gains[0]
	for c := 1; c < len(gains); c++ {
		if gains[c] > bestGain {
			best, bestGain = c, gains[c]
		}
	}
	return best, bestGain
}

func (s *multiSearch) SigmaDrop(pos int) int {
	total := 0
	for _, sub := range s.subs {
		total += sub.SigmaDrop(pos)
	}
	return total
}

// SigmaDrops returns Σ_i σ_i(S \ {S[pos]}) for every position in one
// sharded pass over the per-instance drop vectors. The slice is scratch
// reused across calls.
func (s *multiSearch) SigmaDrops() []int {
	if cap(s.drops) < len(s.sel) {
		s.drops = make([]int, len(s.sel))
	}
	s.drops = s.drops[:len(s.sel)]
	for i := range s.drops {
		s.drops[i] = 0
	}
	subDrops := make([][]int, len(s.subs))
	core.ParallelFor(s.workers, len(s.subs), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if ps, ok := s.subs[i].(core.ParallelSearch); ok {
				subDrops[i] = ps.SigmaDrops()
				continue
			}
			drops := make([]int, len(s.sel))
			for pos := range drops {
				drops[pos] = s.subs[i].SigmaDrop(pos)
			}
			subDrops[i] = drops
		}
	})
	for _, drops := range subDrops {
		for pos, sig := range drops {
			s.drops[pos] += sig
		}
	}
	return s.drops
}

func (s *multiSearch) BestDrop() (pos, sigma int) {
	if len(s.sel) == 0 {
		panic("dynamic: BestDrop on empty selection")
	}
	drops := s.SigmaDrops()
	pos, sigma = 0, drops[0]
	for i := 1; i < len(drops); i++ {
		if drops[i] > sigma {
			pos, sigma = i, drops[i]
		}
	}
	return pos, sigma
}

func (s *multiSearch) Add(cand int) {
	s.sel = append(s.sel, cand)
	for _, sub := range s.subs {
		sub.Add(cand)
	}
	if s.sink != nil {
		e := s.prob.CandidateEdge(cand)
		per := make([]int, len(s.subs))
		total := 0
		for i, sub := range s.subs {
			per[i] = sub.Sigma()
			total += per[i]
		}
		s.sink.Emit(telemetry.DynamicStepEvent{
			Shortcut:         [2]int32{int32(e.U), int32(e.V)},
			Selected:         len(s.sel),
			PerInstanceSigma: per,
			Sigma:            total,
		})
	}
}

func (s *multiSearch) RemoveAt(pos int) {
	s.sel = append(s.sel[:pos], s.sel[pos+1:]...)
	for _, sub := range s.subs {
		sub.RemoveAt(pos)
	}
}
