package dynamic

import (
	"sync"
	"testing"

	"msc/internal/core"
	"msc/internal/telemetry"
)

type memSink struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (s *memSink) Emit(e telemetry.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// TestDynamicStepEvents checks the dynamic problem's trace contract: with
// a sink attached, every committed shortcut emits one DynamicStepEvent
// whose per-time-instance σ split sums to the total and matches a direct
// per-instance evaluation of the selection so far.
func TestDynamicStepEvents(t *testing.T) {
	insts := seriesInstances(t, 16, 6, 3, 3, 0.8, 401)
	p, err := NewProblem(insts)
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	p.SetSink(sink)

	pl := core.GreedySigma(p)
	var steps []telemetry.DynamicStepEvent
	for _, e := range sink.events {
		if s, ok := e.(telemetry.DynamicStepEvent); ok {
			steps = append(steps, s)
		}
	}
	if len(steps) != len(pl.Selection) {
		t.Fatalf("%d step events for %d committed shortcuts", len(steps), len(pl.Selection))
	}
	for i, ev := range steps {
		if ev.Selected != i+1 {
			t.Fatalf("step %d selected %d", i, ev.Selected)
		}
		if len(ev.PerInstanceSigma) != p.T() {
			t.Fatalf("step %d has %d per-instance σ values for T=%d", i, len(ev.PerInstanceSigma), p.T())
		}
		sel := pl.Selection[:i+1]
		total := 0
		for j, inst := range insts {
			want := inst.Sigma(sel)
			if ev.PerInstanceSigma[j] != want {
				t.Fatalf("step %d instance %d σ %d, oracle %d", i, j, ev.PerInstanceSigma[j], want)
			}
			total += want
		}
		if ev.Sigma != total {
			t.Fatalf("step %d total σ %d, sum %d", i, ev.Sigma, total)
		}
		e := p.CandidateEdge(sel[i])
		if ev.Shortcut != [2]int32{int32(e.U), int32(e.V)} {
			t.Fatalf("step %d shortcut %v, selection edge %v", i, ev.Shortcut, e)
		}
	}
	if len(steps) > 0 && steps[len(steps)-1].Sigma != pl.Sigma {
		t.Fatalf("final step σ %d, placement σ %d", steps[len(steps)-1].Sigma, pl.Sigma)
	}

	// Detached sink: identical placement.
	p2, err := NewProblem(seriesInstances(t, 16, 6, 3, 3, 0.8, 401))
	if err != nil {
		t.Fatal(err)
	}
	plain := core.GreedySigma(p2)
	if plain.Sigma != pl.Sigma || len(plain.Selection) != len(pl.Selection) {
		t.Fatalf("placement differs with sink: σ %d vs %d", plain.Sigma, pl.Sigma)
	}
}
