package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of 1..5 = sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestMedianEven(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSingleObservation(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Std != 0 || s.CI95() != 0 || s.Median != 7 {
		t.Fatalf("single obs summary = %+v", s)
	}
}

func TestEmptyPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Summarize(nil) },
		func() { MeanInts(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Summary{N: 10, Std: 2}
	large := Summary{N: 1000, Std: 2}
	if small.CI95() <= large.CI95() {
		t.Fatal("CI95 should shrink with n")
	}
}

func TestIntsHelpers(t *testing.T) {
	if m := MeanInts([]int{1, 2, 3}); m != 2 {
		t.Fatalf("MeanInts = %v", m)
	}
	s := SummarizeInts([]int{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Fatalf("SummarizeInts = %+v", s)
	}
}

func TestStringNonEmpty(t *testing.T) {
	if Summarize([]float64{1, 2}).String() == "" {
		t.Fatal("empty String")
	}
}

// Properties: min ≤ median ≤ max and min ≤ mean ≤ max; mean of shifted
// sample shifts by the same amount.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		if s.Min > s.Median+1e-9 || s.Median > s.Max+1e-9 {
			return false
		}
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
