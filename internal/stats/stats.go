// Package stats provides the small set of summary statistics the experiment
// harness reports: mean, standard deviation, min/max, and normal-theory
// confidence intervals over repeated trials.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean (1.96 · std / sqrt(n)). Zero for n < 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String renders the summary as "mean ± ci [min, max] (n=..)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g] (n=%d)", s.Mean, s.CI95(), s.Min, s.Max, s.N)
}

// MeanInts is a convenience for integer observations (e.g. maintained-pair
// counts across trials).
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// SummarizeInts converts xs to float64 and summarizes.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}
