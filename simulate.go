package msc

import (
	"io"

	"msc/internal/desim"
	"msc/internal/graphio"
	"msc/internal/montecarlo"
	"msc/internal/viz"
)

// This file exposes validation and tooling helpers: the Monte-Carlo
// delivery simulator, the instance file format, and the placement
// renderer.

type (
	// SimNetwork is a network plus placement prepared for delivery
	// simulation; shortcut links never fail.
	SimNetwork = montecarlo.Network
	// SimResult reports per-pair delivery ratios.
	SimResult = montecarlo.Result
	// InstanceDocument is the JSON wire form of an MSC problem instance.
	InstanceDocument = graphio.Document
	// CostTableDocument is the JSON wire form of a per-candidate shortcut
	// price table (the "table" cost model of budget-weighted placement).
	CostTableDocument = graphio.CostTable
	// Scene is a renderable picture of a network with pairs and
	// shortcuts.
	Scene = viz.Scene
	// SVGOptions tune the SVG renderer.
	SVGOptions = viz.SVGOptions
)

// NewSimNetwork prepares a delivery simulation for the graph with the
// given placed shortcuts.
func NewSimNetwork(g *Graph, shortcuts []Edge) (*SimNetwork, error) {
	return montecarlo.NewNetwork(g, shortcuts)
}

// SimulateDelivery samples independent link up/down states for the given
// number of trials and reports, per pair, how often the designated best
// path survived and how often any route did. It validates the MSC
// guarantee end to end: a maintained pair's best path must succeed with
// probability ≥ 1 − p_t.
func SimulateDelivery(nw *SimNetwork, ps []Pair, trials int, rng *Rand) ([]SimResult, error) {
	return nw.Run(ps, trials, rng)
}

// WriteInstanceJSON serializes a problem instance (pair set, threshold and
// budget optional) for the command-line tools.
func WriteInstanceJSON(w io.Writer, g *Graph, ps *PairSet, pt float64, k int) error {
	return graphio.WriteJSON(w, graphio.FromGraph(g, ps, pt, k))
}

// StreamInstanceJSON serializes a problem instance like WriteInstanceJSON
// but streams straight from the graph through a buffered writer, never
// materializing the document or a second copy of the edge set — the
// writer for million-node instances, where the document detour alone
// would need O(E) extra heap. The output is decode-equal to
// WriteInstanceJSON's (ReadInstanceJSON yields the same document), not
// byte-equal.
func StreamInstanceJSON(w io.Writer, g *Graph, ps *PairSet, pt float64, k int) error {
	return graphio.WriteJSONStream(w, g, ps, pt, k)
}

// ReadInstanceJSON deserializes a problem instance document.
func ReadInstanceJSON(r io.Reader) (InstanceDocument, error) {
	return graphio.ReadJSON(r)
}

// ReadCostTable deserializes and validates a shortcut price table for the
// "table" cost model (mscplace -cost-table).
func ReadCostTable(r io.Reader) (CostTableDocument, error) {
	return graphio.ReadCostTable(r)
}

// WriteCostTable serializes a shortcut price table.
func WriteCostTable(w io.Writer, ct CostTableDocument) error {
	return graphio.WriteCostTable(w, ct)
}

// WriteSceneSVG renders a network + placement picture as SVG (the graph
// must carry node coordinates).
func WriteSceneSVG(w io.Writer, sc Scene, opts SVGOptions) error {
	return viz.WriteSVG(w, sc, opts)
}

// WriteSceneASCII renders a terminal sketch of the scene.
func WriteSceneASCII(w io.Writer, sc Scene) error {
	return viz.WriteASCII(w, sc)
}

// Discrete-event delivery simulation (internal/desim): periodic flows,
// per-hop Bernoulli transmissions with retries, topology switching over
// mobility traces.
type (
	// DeliverySimConfig parameterizes a discrete-event run.
	DeliverySimConfig = desim.Config
	// DeliverySimResult is the run outcome.
	DeliverySimResult = desim.Result
	// DeliveryFlow is one periodic traffic source.
	DeliveryFlow = desim.Flow
	// StaticTopology serves a fixed graph to the simulator.
	StaticTopology = desim.Static
	// TraceTopology serves mobility-trace snapshots to the simulator.
	TraceTopology = desim.TraceProvider
)

// RunDeliverySim executes a discrete-event delivery simulation.
func RunDeliverySim(cfg DeliverySimConfig) (DeliverySimResult, error) {
	return desim.Run(cfg)
}

// NewTraceTopology precomputes a mobility trace's snapshots for the
// simulator.
func NewTraceTopology(tr *MobilityTrace, fm FailureModel) (*TraceTopology, error) {
	return desim.NewTraceProvider(tr, fm)
}

// PeriodicFlows builds one staggered flow per pair with a shared period.
func PeriodicFlows(ps []Pair, periodSeconds float64) []DeliveryFlow {
	return desim.PeriodicFlows(ps, periodSeconds)
}
